package autograd

import (
	"testing"
	"time"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// toyGraph builds a 3-block chain with saves covering input, output,
// masks, stats, weights and an extra (cross) input.
func toyGraph() *Graph {
	root := NewModule("toy")
	shape := tensor.NewShape(4, 1024, 64) // 256Ki elements, above no min… below 1<<20
	bigShape := tensor.NewShape(4, 1024, 512)
	mk := func(name string, save bool, w *tensor.Tensor) OpSpec {
		return OpSpec{
			Name:      name,
			FwdTime:   time.Millisecond,
			BwdTime:   2 * time.Millisecond,
			FwdFLOPs:  1e9,
			BwdFLOPs:  2e9,
			OutShape:  bigShape,
			OutDType:  tensor.FP16,
			SaveInput: save,
			Weight:    w,
		}
	}
	w1 := tensor.NewWeight("w1", tensor.NewShape(64, 512), tensor.FP16, tensor.GPU)
	b0 := &Block{Module: root.Child("b0"), Ops: []OpSpec{
		mk("op0", false, nil),
		{Name: "op1", FwdTime: time.Millisecond, BwdTime: time.Millisecond,
			OutShape: bigShape, OutDType: tensor.FP16, SaveOutput: true, SaveMask: true,
			SaveStatsElems: 128},
	}}
	b1 := &Block{Module: root.Child("b1"), Ops: []OpSpec{
		mk("op0", true, w1),
		mk("op1", true, nil),
	}}
	b2 := &Block{Module: root.Child("b2"), Ops: []OpSpec{
		{Name: "xop", FwdTime: time.Millisecond, BwdTime: time.Millisecond,
			OutShape: bigShape, OutDType: tensor.FP16, SaveExtra1: 1},
		mk("op1", true, nil),
	}, ExtraIn: []int{0}}
	_ = shape
	return &Graph{
		Name:       "toy",
		Root:       root,
		Blocks:     []*Block{b0, b1, b2},
		InputShape: tensor.NewShape(4, 1024),
		InputDType: tensor.INT32,
	}
}

func newTestRuntime() *Runtime {
	spec := gpu.A100PCIe()
	return NewRuntime(spec)
}

func TestModuleTree(t *testing.T) {
	root := NewModule("gpt")
	layers := root.Child("layers")
	l3 := layers.Child("3")
	if l3.Path() != "gpt.layers.3" {
		t.Errorf("path = %q", l3.Path())
	}
	if len(root.Children()) != 1 || len(layers.Children()) != 1 {
		t.Error("children wrong")
	}
}

func TestGraphValidation(t *testing.T) {
	g := toyGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := toyGraph()
	bad.Blocks[2].Ops[0].SaveExtra1 = 5
	if bad.Validate() == nil {
		t.Error("out-of-range SaveExtra1 accepted")
	}
	bad2 := toyGraph()
	bad2.Blocks[2].Ops[0].SaveExtra1 = 0 // extra input now unconsumed
	if bad2.Validate() == nil {
		t.Error("unconsumed extra input accepted")
	}
	bad3 := toyGraph()
	bad3.Blocks[0].Ops[0].InputFrom1 = 3
	if bad3.Validate() == nil {
		t.Error("forward InputFrom1 accepted")
	}
	bad4 := toyGraph()
	bad4.Blocks[0].Ops = nil
	if bad4.Validate() == nil {
		t.Error("empty block accepted")
	}
}

func TestGraphAccounting(t *testing.T) {
	g := toyGraph()
	ws := g.Weights()
	if len(ws) != 1 {
		t.Fatalf("weights = %d", len(ws))
	}
	if g.WeightBytes() != units.Bytes(64*512*2) {
		t.Errorf("weight bytes = %v", g.WeightBytes())
	}
	// 3 blocks × 2 ops × (1+2) GFLOP for saving ops… just check positive
	// and equal to the sum of spec fields.
	var want units.FLOPs
	for _, b := range g.Blocks {
		for i := range b.Ops {
			want += b.Ops[i].FwdFLOPs + b.Ops[i].BwdFLOPs
		}
	}
	if g.ModelFLOPsPerMicroBatch() != want {
		t.Errorf("model flops = %v, want %v", g.ModelFLOPsPerMicroBatch(), want)
	}
}

func TestSavedBytesDedup(t *testing.T) {
	// An op that saves its output and a successor that saves its input
	// (the same tensor) must count the bytes once.
	root := NewModule("m")
	shape := tensor.NewShape(1024)
	b := &Block{Module: root.Child("b"), Ops: []OpSpec{
		{Name: "a", OutShape: shape, OutDType: tensor.FP16, SaveOutput: true},
		{Name: "b", OutShape: shape, OutDType: tensor.FP16, SaveInput: true},
	}}
	got := b.SavedBytes(0, nil)
	if got != units.Bytes(1024*2) {
		t.Errorf("saved bytes = %v, want one tensor (2048)", got)
	}
}

func TestExecutorLeakFree(t *testing.T) {
	rt := newTestRuntime()
	g := toyGraph()
	ex, err := NewExecutor(rt, g, nil, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res := ex.Run()
	if res.Stats.StepTime <= 0 {
		t.Error("non-positive step time")
	}
	// After a step, only weights and their gradient buffers stay live.
	want := g.WeightBytes() * 2
	if rt.Alloc.LiveBytes() != want {
		t.Errorf("live bytes = %v, want %v (weights+grads)", rt.Alloc.LiveBytes(), want)
	}
	rt.Life.MustBeQuiescent("post-step")
}

func TestExecutorDeterministic(t *testing.T) {
	mk := func() StepResult {
		rt := newTestRuntime()
		ex, _ := NewExecutor(rt, toyGraph(), nil, ExecConfig{})
		ex.Run()
		return ex.Run()
	}
	a, b := mk(), mk()
	if a.Stats.StepTime != b.Stats.StepTime || a.End != b.End {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestExecutorMultiStepAdvancesClock(t *testing.T) {
	rt := newTestRuntime()
	ex, _ := NewExecutor(rt, toyGraph(), nil, ExecConfig{})
	r1 := ex.Run()
	r2 := ex.Run()
	if r2.Start != r1.End {
		t.Errorf("step 2 start %v != step 1 end %v", r2.Start, r1.End)
	}
	if r2.Stats.StepTime <= 0 {
		t.Error("second step has no duration")
	}
}

func TestExecutorRecompute(t *testing.T) {
	base := func(checkpoint bool) (StepResult, *Runtime) {
		rt := newTestRuntime()
		g := toyGraph()
		for _, b := range g.Blocks {
			b.Checkpoint = checkpoint
		}
		ex, err := NewExecutor(rt, g, nil, ExecConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return ex.Run(), rt
	}
	plain, _ := base(false)
	rec, rt := base(true)
	// Recompute re-runs forwards: longer step, identical model FLOPs.
	if rec.Stats.StepTime <= plain.Stats.StepTime {
		t.Errorf("recompute %v not slower than plain %v", rec.Stats.StepTime, plain.Stats.StepTime)
	}
	if rec.Stats.ModelFLOPs != plain.Stats.ModelFLOPs {
		t.Errorf("model flops changed under recompute: %v vs %v", rec.Stats.ModelFLOPs, plain.Stats.ModelFLOPs)
	}
	if rt.Counters.Get("exec.recompute_ops") == 0 {
		t.Error("no recompute ops counted")
	}
	rt.Life.MustBeQuiescent("post-recompute")
}

func TestExecutorMicroBatches(t *testing.T) {
	rt := newTestRuntime()
	ex, _ := NewExecutor(rt, toyGraph(), nil, ExecConfig{MicroBatches: 3})
	res := ex.Run()
	rt2 := newTestRuntime()
	ex2, _ := NewExecutor(rt2, toyGraph(), nil, ExecConfig{MicroBatches: 1})
	res1 := ex2.Run()
	if res.Stats.ModelFLOPs != 3*res1.Stats.ModelFLOPs {
		t.Errorf("3 micro-batches flops %v != 3 × %v", res.Stats.ModelFLOPs, res1.Stats.ModelFLOPs)
	}
	if res.Stats.StepTime <= 2*res1.Stats.StepTime {
		t.Errorf("3 micro-batches not ~3x longer: %v vs %v", res.Stats.StepTime, res1.Stats.StepTime)
	}
}

// recordingHooks checks the hook call protocol.
type recordingHooks struct {
	NoHooks
	phases    []PhaseEvent
	fwdPre    int
	fwdPost   int
	bwdPre    int
	bwdPost   int
	packs     int
	unpacks   int
	consumed  int
	weightsOK bool
}

func (h *recordingHooks) Phase(ev PhaseEvent, mb int, now time.Duration) {
	h.phases = append(h.phases, ev)
}
func (h *recordingHooks) ForwardPre(*Module, time.Duration)   { h.fwdPre++ }
func (h *recordingHooks) ForwardPost(*Module, time.Duration)  { h.fwdPost++ }
func (h *recordingHooks) BackwardPre(*Module, time.Duration)  { h.bwdPre++ }
func (h *recordingHooks) BackwardPost(*Module, time.Duration) { h.bwdPost++ }
func (h *recordingHooks) Pack(t *tensor.Tensor, producedAt, now time.Duration) Packed {
	h.packs++
	if t.IsWeight() {
		h.weightsOK = true
	}
	return t
}
func (h *recordingHooks) Unpack(p Packed, now time.Duration) (*tensor.Tensor, time.Duration) {
	h.unpacks++
	return p.(*tensor.Tensor), now
}
func (h *recordingHooks) Consumed(Packed, time.Duration) { h.consumed++ }

func TestHookProtocol(t *testing.T) {
	rt := newTestRuntime()
	h := &recordingHooks{}
	ex, _ := NewExecutor(rt, toyGraph(), h, ExecConfig{})
	ex.Run()
	if h.fwdPre != 3 || h.fwdPost != 3 || h.bwdPre != 3 || h.bwdPost != 3 {
		t.Errorf("module hooks: %d %d %d %d", h.fwdPre, h.fwdPost, h.bwdPre, h.bwdPost)
	}
	if h.packs == 0 || h.packs != h.unpacks || h.consumed != h.packs {
		t.Errorf("pack/unpack/consume mismatch: %d/%d/%d", h.packs, h.unpacks, h.consumed)
	}
	if !h.weightsOK {
		t.Error("weight transpose was never packed")
	}
	wantPhases := []PhaseEvent{PhaseStepStart, PhaseForward, PhaseBackward, PhaseOptimizer, PhaseStepEnd}
	if len(h.phases) != len(wantPhases) {
		t.Fatalf("phases = %v", h.phases)
	}
	for i, p := range wantPhases {
		if h.phases[i] != p {
			t.Fatalf("phases = %v, want %v", h.phases, wantPhases)
		}
	}
}

// stallingHooks forces a reload delay on every unpack to verify stall
// accounting.
type stallingHooks struct {
	NoHooks
	delay time.Duration
}

func (h *stallingHooks) Unpack(p Packed, now time.Duration) (*tensor.Tensor, time.Duration) {
	return p.(*tensor.Tensor), now + h.delay
}

func TestStallAccounting(t *testing.T) {
	rt := newTestRuntime()
	ex, _ := NewExecutor(rt, toyGraph(), &stallingHooks{delay: 5 * time.Millisecond}, ExecConfig{})
	res := ex.Run()
	if res.Stats.ComputeStall == 0 {
		t.Error("forced unpack delays produced no stall")
	}
	rtBase := newTestRuntime()
	exBase, _ := NewExecutor(rtBase, toyGraph(), nil, ExecConfig{})
	resBase := exBase.Run()
	if res.Stats.StepTime <= resBase.Stats.StepTime {
		t.Error("stalls did not lengthen the step")
	}
}

func TestUpdateCostCharged(t *testing.T) {
	rt := newTestRuntime()
	ex, _ := NewExecutor(rt, toyGraph(), nil, ExecConfig{
		UpdateCost: func(w *tensor.Tensor) time.Duration { return 10 * time.Millisecond },
	})
	res := ex.Run()
	if res.UpdateTime < 10*time.Millisecond {
		t.Errorf("update time = %v", res.UpdateTime)
	}
}

func TestNoHooksPassthrough(t *testing.T) {
	x := tensor.New("x", tensor.NewShape(4), tensor.FP16, tensor.GPU)
	var h NoHooks
	p := h.Pack(x, 0, 0)
	got, ready := h.Unpack(p, 5*time.Millisecond)
	if got != x || ready != 5*time.Millisecond {
		t.Error("NoHooks not a passthrough")
	}
}

func TestLifetimesRelease(t *testing.T) {
	alloc := gpu.NewAllocator(units.GiB)
	life := NewLifetimes(alloc)
	s := tensor.NewStorage(100, tensor.GPU)
	life.Alloc(time.Millisecond, s, gpu.ClassActivations)
	life.Retain(s)
	life.Release(s, 10*time.Millisecond)
	if s.Freed() {
		t.Error("freed with a live ref")
	}
	life.Release(s, 5*time.Millisecond)
	if !s.Freed() {
		t.Error("not freed at refcount zero")
	}
	// Free time is the max of release times.
	rep := alloc.Finalize(true)
	samples := rep.Timeline.Samples()
	last := samples[len(samples)-1]
	if last.At != 10*time.Millisecond {
		t.Errorf("free recorded at %v, want max release time 10ms", last.At)
	}
}
