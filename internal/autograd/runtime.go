package autograd

import (
	"fmt"
	"time"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
)

// Runtime bundles the simulated device state one training process sees:
// the event engine, the GPU allocator, storage lifetimes, and the compute
// stream. Both the executor and the tensor cache operate against the same
// Runtime, mirroring how the paper's cache shares the CUDA context with
// PyTorch.
type Runtime struct {
	Eng      *sim.Engine
	Spec     gpu.Spec
	Cost     *gpu.CostModel
	Alloc    *gpu.Allocator
	Life     *Lifetimes
	Compute  *sim.Server
	Counters *trace.Counters

	// Rec is the arena's flight recorder, constructed disabled; the
	// measurement harness enables it around traced runs. ComputeTrack is
	// the executor's kernel track on it.
	Rec          *spans.Recorder
	ComputeTrack spans.TrackID
}

// NewRuntime builds a runtime for one GPU. The flight recorder is wired
// before any substrate is constructed so every substrate built on the
// engine — here and later in the arena — registers its tracks on it.
func NewRuntime(spec gpu.Spec) *Runtime {
	eng := sim.NewEngine()
	rec := spans.NewRecorder(0)
	eng.SetRecorder(rec)
	alloc := gpu.NewAllocator(spec.Memory)
	alloc.SetRecorder(rec)
	return &Runtime{
		Eng:          eng,
		Spec:         spec,
		Cost:         gpu.DefaultCostModel(spec),
		Alloc:        alloc,
		Life:         NewLifetimes(alloc),
		Compute:      sim.NewServer(eng, "gpu.compute"),
		Counters:     trace.NewCounters(),
		Rec:          rec,
		ComputeTrack: rec.RegisterTrack("gpu.compute"),
	}
}

// Reset rewinds the whole simulated device for reuse by a new
// measurement on the same arena: virtual time restarts, the allocator's
// recorded run is discarded (hooks survive), pending lifetime bookkeeping
// is dropped, the compute stream is idle, and the counters read zero.
// Warm capacity — the engine's event pool, the allocator's event buffer,
// map buckets everywhere — is retained; that is what makes a reset
// cheaper than a rebuild.
func (rt *Runtime) Reset() {
	rt.Eng.Reset()
	rt.Alloc.Reset()
	rt.Life.Reset()
	rt.Compute.Reset()
	rt.Counters.Reset()
}

// Lifetimes coordinates reference-counted storage release between the
// executor and the tensor cache. A storage is freed into the allocator
// when its last strong reference is dropped, at the latest virtual time
// any reference was released — exactly the paper's semantics where GPU
// memory is reclaimed "once the control flow gets out of the function
// scope" AND offloading has finished (§III-B).
type Lifetimes struct {
	alloc  *gpu.Allocator
	freeAt map[int64]time.Duration
}

// NewLifetimes creates a tracker bound to the allocator.
func NewLifetimes(alloc *gpu.Allocator) *Lifetimes {
	return &Lifetimes{alloc: alloc, freeAt: make(map[int64]time.Duration)}
}

// Alloc registers the storage with the allocator at virtual time at and
// takes the initial (producer) reference.
func (l *Lifetimes) Alloc(at time.Duration, s *tensor.Storage, class gpu.Class) {
	l.alloc.Alloc(at, s, class)
	s.Retain()
}

// Retain takes an additional reference on a live storage.
func (l *Lifetimes) Retain(s *tensor.Storage) { s.Retain() }

// Release drops a reference at virtual time at; when the count reaches
// zero the storage is freed into the allocator at the maximum release
// time seen.
func (l *Lifetimes) Release(s *tensor.Storage, at time.Duration) {
	seq := s.Seq()
	if prev, ok := l.freeAt[seq]; !ok || at > prev {
		l.freeAt[seq] = at
	}
	if s.Release() {
		l.alloc.Free(l.freeAt[seq], s)
		delete(l.freeAt, seq)
	}
}

// Reset drops any pending release bookkeeping for reuse by a new run. A
// clean run ends quiescent, so this usually clears nothing; after an
// aborted run it discards the partial state a fresh tracker would never
// have seen.
func (l *Lifetimes) Reset() { clear(l.freeAt) }

// MustBeQuiescent panics if any tracked release times remain for live
// storages — a leak detector used by tests at step boundaries.
func (l *Lifetimes) MustBeQuiescent(context string) {
	if n := len(l.freeAt); n > 0 {
		panic(fmt.Sprintf("autograd: %s: %d storages still partially released", context, n))
	}
}
