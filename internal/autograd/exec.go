package autograd

import (
	"fmt"
	"time"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Stall causes recorded on the compute track when the host blocks on
// in-flight reloads (the attribution report buckets stall time by these).
const (
	stallReloadWait       = "reload-wait"
	stallCheckpointInputs = "checkpoint-inputs"
	// stallOptimWait is fwd(t+1) waiting for a weight whose offloaded
	// optimizer chain from step t has not uploaded the updated value yet.
	stallOptimWait = "optim-wait"
)

// ExecConfig configures the training-step executor.
type ExecConfig struct {
	// MicroBatches per step (gradient accumulation); the paper's main
	// evaluation fixes this at 1 (§IV-A).
	MicroBatches int
	// UpdateCost returns the optimizer's per-weight kernel time.
	UpdateCost func(w *tensor.Tensor) time.Duration
	// AccumCost returns the per-weight gradient accumulation kernel time,
	// charged for every micro-batch after the first.
	AccumCost func(w *tensor.Tensor) time.Duration
	// Materialize backs saved activations with real deterministic bytes so
	// offload round-trips can be verified checksum-exactly.
	Materialize bool
	// Seed parameterizes materialized payloads.
	Seed uint64
}

// savedRef is one graph entry: the packed handle plus executor-side
// retention bookkeeping for raw (uncached) tensors.
type savedRef struct {
	packed      Packed
	t           *tensor.Tensor
	rawRetained bool
}

// opRun records one executed forward op. The saved slice's capacity is
// retained across steps — every step saves the same tensors, so after the
// first step the append chain allocates nothing.
type opRun struct {
	spec   *OpSpec
	saved  []savedRef
	finish time.Duration
	out    *tensor.Tensor

	// outT..recMaskT are the op's recycled tensors: every step (and every
	// run on a recycled arena) produces the same tensor population, so
	// instead of allocating fresh tensor+storage pairs each iteration the
	// executor re-zeroes these in place (reviveInto). Identity semantics
	// are preserved — a revived storage is unstamped and unreferenced, so
	// the allocator and the cache treat it exactly like a new allocation.
	outT     *tensor.Tensor
	gradT    *tensor.Tensor
	maskT    *tensor.Tensor
	statsT   *tensor.Tensor
	recT     *tensor.Tensor
	recMaskT *tensor.Tensor
}

// blockRun records one executed forward block. blockRuns live on the
// executor and are reset in place each micro-batch: the simulated step is
// identical every iteration, so its bookkeeping memory is too.
type blockRun struct {
	block  *Block
	ops    []opRun
	in     *tensor.Tensor
	extras []*tensor.Tensor
	out    *tensor.Tensor
	// inPacked/extraPacked are set for checkpointed blocks: the block
	// inputs are the only saved tensors (PyTorch checkpointing saves the
	// function's arguments).
	inPacked    savedRef
	extraPacked []savedRef
	// extraFinish/recomputed/recMasks/chkRefs are per-block scratch reused
	// across steps.
	extraFinish []time.Duration
	recomputed  []*tensor.Tensor
	recMasks    []*tensor.Tensor
	chkRefs     []savedRef
}

// opStatic is the per-op state that never changes across steps: tensor
// names, the pre-transposed weight view, and the stats-tensor shape. The
// seed executor rebuilt all of these with fmt.Sprintf on every step —
// string formatting was a third of the simulator's allocations.
type opStatic struct {
	outName   string
	gradName  string
	recName   string
	maskName  string
	statsName string
	// wt is the transposed weight view registered for backward; one view
	// object per op, reused every step (identity semantics are unchanged —
	// the cache identifies tensors by storage stamp + shape, not object).
	wt         *tensor.Tensor
	statsShape tensor.Shape
}

// blockStatic is the per-block forward prepass, computed once: the last
// forward consumer of every op output, of the block input, and of each
// extra input, so producer references are released at exactly the right
// kernel completion.
type blockStatic struct {
	ops       []opStatic
	lastOut   []int
	lastIn    int
	lastExtra []int
}

// Executor drives training steps of a Graph on a Runtime through the
// Hooks surface. It reproduces the host/device split of the real stack:
// the host issues kernels ahead of the device, blocks on unpacked tensors
// that are still loading, and charges hook CPU costs to host time — which
// is how the paper's "negligible overhead" claim becomes measurable here.
type Executor struct {
	rt    *Runtime
	graph *Graph
	hooks Hooks
	cfg   ExecConfig

	clock time.Duration // start of the next step
	seed  uint64
	// weights caches the graph's distinct parameters (graph order): the
	// optimizer touches them every step and Reset re-registers them, so
	// recomputing the list per use would put a map+slice on the hot path.
	weights []*tensor.Tensor
	gradOf  map[int64]*tensor.Tensor // weight storage seq → grad tensor
	// gradAllocated marks grad buffers registered with the allocator in
	// the current run; cleared by Reset so a recycled arena re-allocates
	// them at first backward touch exactly like a fresh executor.
	gradAllocated map[int64]bool
	consumer      map[int]int // block index → forward consumer count

	// optim, when set, replaces the on-GPU optimizer loop with an
	// offloaded pipeline (ConfigureOptim). gradOps counts each weight's
	// backward ops per micro-batch (static); gradLeft counts down during
	// the last micro-batch so GradReady fires exactly when the weight's
	// gradient is complete.
	optim        OptimPipeline
	optimOverlap bool
	gradOps      map[int64]int
	gradLeft     map[int64]int

	// inT/gradSeedT are the recycled per-micro-batch graph input and loss
	// gradient seed (see opRun's recycled tensors).
	inT       *tensor.Tensor
	gradSeedT *tensor.Tensor

	static []blockStatic
	// runs/outs/finishes are per-step scratch, reset every micro-batch.
	runs     []blockRun
	outs     []*tensor.Tensor
	finishes []time.Duration
	// unpacked is shared unpack scratch; its contents are consumed before
	// the next unpackAll call.
	unpacked []*tensor.Tensor
}

// NewExecutor validates the graph, allocates weights (and their
// gradient buffers lazily), and returns an executor.
func NewExecutor(rt *Runtime, g *Graph, hooks Hooks, cfg ExecConfig) (*Executor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if hooks == nil {
		hooks = NoHooks{}
	}
	if cfg.MicroBatches <= 0 {
		cfg.MicroBatches = 1
	}
	if cfg.UpdateCost == nil {
		cfg.UpdateCost = func(*tensor.Tensor) time.Duration { return 0 }
	}
	if cfg.AccumCost == nil {
		cfg.AccumCost = func(*tensor.Tensor) time.Duration { return 0 }
	}
	e := &Executor{
		rt:            rt,
		graph:         g,
		hooks:         hooks,
		cfg:           cfg,
		seed:          cfg.Seed,
		weights:       g.Weights(),
		gradOf:        make(map[int64]*tensor.Tensor),
		gradAllocated: make(map[int64]bool),
		gradOps:       make(map[int64]int),
		gradLeft:      make(map[int64]int),
	}
	for _, b := range g.Blocks {
		for i := range b.Ops {
			if w := b.Ops[i].Weight; w != nil {
				e.gradOps[w.Storage().Seq()]++
			}
		}
	}
	for _, w := range e.weights {
		rt.Life.Alloc(0, w.Storage(), gpu.ClassWeights)
	}
	e.computeConsumers()
	e.computeStatics()
	return e, nil
}

// Weights returns the graph's distinct parameter tensors in graph order.
func (e *Executor) Weights() []*tensor.Tensor { return e.weights }

// Reset rewinds the executor for a new measurement on a recycled arena:
// the step clock restarts, the materialization seed replays, gradient
// buffers are treated as unallocated again (re-registered at first
// backward touch, as a fresh executor would), and the weights are
// re-registered with the (reset) allocator. Call after Runtime.Reset and
// after the weight storages were reset in place.
func (e *Executor) Reset() {
	e.clock = 0
	e.seed = e.cfg.Seed
	clear(e.gradAllocated)
	clear(e.gradLeft)
	for _, w := range e.weights {
		e.rt.Life.Alloc(0, w.Storage(), gpu.ClassWeights)
	}
}

// reviveInto returns the cached tensor with its storage re-zeroed,
// allocating the tensor on first use. A revived tensor keeps its identity
// (name, shape, dtype); its storage is unstamped, unreferenced and
// unmaterialized, indistinguishable from a fresh allocation to the
// allocator and the cache.
func reviveInto(slot **tensor.Tensor, name string, shape tensor.Shape, dt tensor.DType) *tensor.Tensor {
	t := *slot
	if t == nil {
		t = tensor.New(name, shape, dt, tensor.GPU)
		*slot = t
		return t
	}
	t.Storage().ResetForReuse()
	return t
}

// computeConsumers precomputes forward fan-out per block output.
func (e *Executor) computeConsumers() {
	e.consumer = make(map[int]int)
	for bi, b := range e.graph.Blocks {
		// The chained successor, or the loss/backward seed for the final
		// block, consumes every block output exactly once.
		e.consumer[bi]++
		for _, x := range b.ExtraIn {
			e.consumer[x]++
		}
	}
}

// computeStatics precomputes names, transposed weight views, the
// last-consumer prepass, and the per-step scratch structures.
func (e *Executor) computeStatics() {
	blocks := e.graph.Blocks
	e.static = make([]blockStatic, len(blocks))
	e.runs = make([]blockRun, len(blocks))
	e.outs = make([]*tensor.Tensor, len(blocks))
	e.finishes = make([]time.Duration, len(blocks))
	for bi, b := range blocks {
		st := &e.static[bi]
		st.ops = make([]opStatic, len(b.Ops))
		path := b.Module.Path()
		for oi := range b.Ops {
			op := &b.Ops[oi]
			os := &st.ops[oi]
			os.outName = path + "." + op.Name
			os.gradName = os.outName + ".grad"
			os.recName = os.outName + ".rec"
			if op.SaveMask {
				os.maskName = os.outName + ".mask"
			}
			if op.SaveStatsElems > 0 {
				os.statsName = os.outName + ".stats"
				os.statsShape = tensor.NewShape(int(op.SaveStatsElems))
			}
			if op.Weight != nil {
				os.wt = op.Weight.Transpose()
			}
		}

		// Last-consumer prepass (static: depends only on the op specs).
		n := len(b.Ops)
		st.lastOut = make([]int, n)
		for j := range st.lastOut {
			st.lastOut[j] = -1
		}
		st.lastExtra = make([]int, len(b.ExtraIn))
		for k := range st.lastExtra {
			st.lastExtra[k] = -1
		}
		for oi := range b.Ops {
			op := &b.Ops[oi]
			if j := b.InputIndex(oi); j >= 0 {
				if oi > st.lastOut[j] {
					st.lastOut[j] = oi
				}
			} else if oi > st.lastIn {
				st.lastIn = oi
			}
			if s := op.SaveOther1 - 1; s >= 0 && oi > st.lastOut[s] {
				st.lastOut[s] = oi
			}
			if op.SaveBlockInput && oi > st.lastIn {
				st.lastIn = oi
			}
			if k := op.SaveExtra1 - 1; k >= 0 && oi > st.lastExtra[k] {
				st.lastExtra[k] = oi
			}
		}

		run := &e.runs[bi]
		run.block = b
		run.ops = make([]opRun, n)
		run.extras = make([]*tensor.Tensor, len(b.ExtraIn))
		run.extraFinish = make([]time.Duration, len(b.ExtraIn))
		run.recomputed = make([]*tensor.Tensor, n)
	}
}

// StepResult reports one executed step.
type StepResult struct {
	Stats trace.StepStats
	// HostTime is where the host clock ended relative to step start.
	HostTime time.Duration
	// UpdateTime is the optimizer phase duration (weight updates).
	UpdateTime time.Duration
	// StoreDrain is when outstanding offload writes finish (may exceed
	// step end; the next step's forward overlaps it).
	Start time.Duration
	End   time.Duration
}

// Run executes one training step and returns its result. Successive calls
// continue on the same virtual timeline.
func (e *Executor) Run() StepResult {
	start := e.clock
	hostNow := start
	var stall time.Duration
	var modelFLOPs units.FLOPs

	e.hooks.Phase(PhaseStepStart, 0, hostNow)

	for mb := 0; mb < e.cfg.MicroBatches; mb++ {
		e.hooks.Phase(PhaseForward, mb, hostNow)

		// Graph input (token ids). It carries a producer ref plus one
		// consumer ref for the first block.
		in := reviveInto(&e.inT, "input", e.graph.InputShape, e.graph.InputDType)
		e.rt.Life.Alloc(hostNow, in.Storage(), gpu.ClassWorkspace)
		e.rt.Life.Retain(in.Storage())

		cur, curFinish := in, hostNow
		for bi, b := range e.graph.Blocks {
			run := &e.runs[bi]
			run.in, run.out = cur, nil
			for k, src := range b.ExtraIn {
				run.extras[k] = e.outs[src]
				run.extraFinish[k] = e.finishes[src]
			}
			e.forwardBlock(run, &e.static[bi], bi, curFinish, &hostNow, &stall, &modelFLOPs)
			e.outs[bi] = run.out
			e.finishes[bi] = run.ops[len(run.ops)-1].finish
			cur, curFinish = run.out, e.finishes[bi]
		}
		// The graph input's producer ref: released after the first block's
		// first op consumed it.
		e.rt.Life.Release(in.Storage(), e.runs[0].ops[0].finish)

		// Backward. The host synchronizes with the device at the
		// forward→backward boundary: FP16 training engines read the loss
		// and the loss-scale overflow flag on the host here, which is a
		// device sync (Megatron-DeepSpeed behaviour). The sync also
		// anchors the tensor cache's forwarding decisions to real store
		// progress instead of the host's run-ahead clock.
		if bu := e.rt.Compute.BusyUntil(); bu > hostNow {
			hostNow = bu
		}
		e.hooks.Phase(PhaseBackward, mb, hostNow)
		if e.optim != nil && mb == e.cfg.MicroBatches-1 {
			// Last micro-batch: arm the per-weight countdowns so GradReady
			// fires at each weight's final gradient (post-accumulation).
			for seq, n := range e.gradOps {
				e.gradLeft[seq] = n
			}
		}
		final := e.outs[len(e.outs)-1]
		finalFinish := e.finishes[len(e.finishes)-1]
		// Loss gradient seed, shaped like the final output.
		grad := reviveInto(&e.gradSeedT, "gradseed", final.Shape(), final.DType())
		e.rt.Life.Alloc(hostNow, grad.Storage(), gpu.ClassWorkspace)
		// The loss consumer ref on the final output: the gradient seed's
		// computation reads it once the forward output exists.
		relAt := hostNow
		if finalFinish > relAt {
			relAt = finalFinish
		}
		e.rt.Life.Release(final.Storage(), relAt)

		var bwdEnd time.Duration
		for bi := len(e.runs) - 1; bi >= 0; bi-- {
			grad, bwdEnd = e.backwardBlock(&e.runs[bi], &e.static[bi], grad, &hostNow, &stall, mb, bi)
		}
		// The gradient wrt the graph input is discarded once its producing
		// kernel completes.
		e.rt.Life.Release(grad.Storage(), bwdEnd)
		for bi := range e.runs {
			modelFLOPs += e.backwardFLOPs(e.runs[bi].block)
		}
	}

	// Optimizer.
	bwdEndAll := e.rt.Compute.BusyUntil()
	e.hooks.Phase(PhaseOptimizer, 0, hostNow)
	var end time.Duration
	if e.optim != nil {
		// The update runs on the offloaded pipeline (its chains were
		// dispatched from backwardBlock as gradients completed), not the
		// GPU. Sync holds the step open until every chain drains; overlap
		// ends at the compute horizon and lets the pipeline drain into the
		// next step's forward, which stalls per weight as needed.
		end = e.rt.Compute.BusyUntil()
		if hostNow > end {
			end = hostNow
		}
		if !e.optimOverlap {
			if d := e.optim.Drain(); d > end {
				end = d
			}
		}
		e.optim.StepEnd(end)
	} else {
		for _, w := range e.weights {
			hostNow += e.rt.Spec.HostIssue
			dur := e.cfg.UpdateCost(w)
			f := e.rt.Compute.Submit(hostNow, dur, nil)
			e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindOptimizer, -1, w.Name(), f-dur, f, 0, 0)
		}
		end = e.rt.Compute.BusyUntil()
		if hostNow > end {
			end = hostNow
		}
	}
	e.hooks.Phase(PhaseStepEnd, 0, end)
	e.clock = end

	return StepResult{
		Stats: trace.StepStats{
			StepTime:     end - start,
			ModelFLOPs:   modelFLOPs,
			ComputeStall: stall,
		},
		HostTime:   hostNow - start,
		UpdateTime: end - bwdEndAll,
		Start:      start,
		End:        end,
	}
}

func (e *Executor) backwardFLOPs(b *Block) units.FLOPs {
	var f units.FLOPs
	for i := range b.Ops {
		f += b.Ops[i].BwdFLOPs
	}
	return f
}

// materialize optionally backs a tensor with deterministic bytes.
func (e *Executor) materialize(t *tensor.Tensor) {
	if e.cfg.Materialize && t.Storage().Data() == nil {
		e.seed++
		t.Storage().Materialize(e.seed)
	}
}

// pack routes a tensor through the pack hook and applies the executor's
// retention rule for raw returns: non-weight GPU tensors stored raw on
// the graph are kept alive by the graph until consumed.
func (e *Executor) pack(t *tensor.Tensor, producedAt time.Duration, hostNow *time.Duration) savedRef {
	e.materialize(t)
	*hostNow += e.hooks.HostCost()
	p := e.hooks.Pack(t, producedAt, *hostNow)
	ref := savedRef{packed: p, t: t}
	if raw, ok := p.(*tensor.Tensor); ok {
		if !raw.IsWeight() && !raw.IsCPU() {
			e.rt.Life.Retain(raw.Storage())
			ref.rawRetained = true
		}
	}
	e.rt.Counters.Add("exec.packs", 1)
	return ref
}

// unpackAll resolves an op's saved refs, blocking host time on reloads,
// and returns the data-ready lower bound for the backward kernel. The
// returned slice is shared scratch, valid until the next unpackAll call.
func (e *Executor) unpackAll(saved []savedRef, hostNow *time.Duration, stall *time.Duration, cause string) ([]*tensor.Tensor, time.Duration) {
	base := *hostNow
	if bu := e.rt.Compute.BusyUntil(); bu > base {
		base = bu
	}
	dataReady := *hostNow
	tensors := e.unpacked[:0]
	for i := range saved {
		*hostNow += e.hooks.HostCost()
		t, ready := e.hooks.Unpack(saved[i].packed, *hostNow)
		if t == nil {
			panic(fmt.Sprintf("autograd: unpack returned nil for %v", saved[i].t))
		}
		tensors = append(tensors, t)
		if ready > dataReady {
			dataReady = ready
		}
		if ready > *hostNow {
			*hostNow = ready // host blocks until the load completes
		}
		e.rt.Counters.Add("exec.unpacks", 1)
	}
	e.unpacked = tensors
	if dataReady > base {
		*stall += dataReady - base
		e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindStall, -1, cause, base, dataReady, 0, 0)
	}
	return tensors, dataReady
}

// consumeAll releases an op's saved refs after its backward kernel
// finished at the given time.
func (e *Executor) consumeAll(saved []savedRef, at time.Duration) {
	for i := range saved {
		e.hooks.Consumed(saved[i].packed, at)
		if saved[i].rawRetained {
			e.rt.Life.Release(saved[i].t.Storage(), at)
		}
	}
}

// forwardBlock executes one block's forward pass in place on run. The
// block input and extras (with their producing kernels' completion times)
// are already set on run by the caller.
func (e *Executor) forwardBlock(run *blockRun, st *blockStatic, bi int, inFinish time.Duration, hostNow *time.Duration, stall *time.Duration, modelFLOPs *units.FLOPs) {
	b := run.block
	blockIn := run.in
	extras := run.extras
	e.hooks.ForwardPre(b.Module, *hostNow)

	if b.Checkpoint {
		// Only the block inputs are registered for backward.
		run.inPacked = e.pack(blockIn, inFinish, hostNow)
		run.extraPacked = run.extraPacked[:0]
		for k := range extras {
			run.extraPacked = append(run.extraPacked, e.pack(extras[k], run.extraFinish[k], hostNow))
		}
	}

	n := len(b.Ops)
	for oi := range b.Ops {
		op := &b.Ops[oi]
		input := blockIn
		if j := b.InputIndex(oi); j >= 0 {
			input = run.ops[j].out
		}
		*hostNow += e.rt.Spec.HostIssue
		ready := *hostNow
		if e.optim != nil && op.Weight != nil {
			if wr := e.optim.WeightReady(op.Weight); wr > ready {
				// fwd(t+1) touching a weight whose updated value is still
				// uploading from step t's offloaded optimizer: the device
				// (not the host) waits for the chain to land.
				base := ready
				if bu := e.rt.Compute.BusyUntil(); bu > base {
					base = bu
				}
				if wr > base {
					*stall += wr - base
					e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindStall, int32(bi), stallOptimWait, base, wr, 0, 0)
				}
				ready = wr
			}
		}
		finish := e.rt.Compute.Submit(ready, op.FwdTime, nil)
		start := finish - op.FwdTime
		e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindForward, int32(bi), st.ops[oi].outName, start, finish, 0, 0)
		*modelFLOPs += op.FwdFLOPs

		rec := &run.ops[oi]
		out := reviveInto(&rec.outT, st.ops[oi].outName, op.OutShape, op.OutDType)
		e.rt.Life.Alloc(start, out.Storage(), gpu.ClassActivations)
		rec.spec, rec.finish, rec.out = op, finish, out
		rec.saved = rec.saved[:0]

		if !b.Checkpoint {
			e.saveForBackward(rec, &st.ops[oi], b, oi, input, blockIn, extras, run, start, finish, hostNow)
			// Weight transpose views are registered on the graph by linear
			// layers even under checkpointing (PyTorch re-registers during
			// recomputation; net effect on the cache is identical).
			if wt := st.ops[oi].wt; wt != nil {
				rec.saved = append(rec.saved, e.pack(wt, finish, hostNow))
			}
		}

		// Release producer refs whose last forward consumer is this op.
		for j := 0; j < oi; j++ {
			if st.lastOut[j] == oi {
				e.rt.Life.Release(run.ops[j].out.Storage(), finish)
			}
		}
		// An output nothing consumes dies with its own producing op
		// (unless it is the block output, whose refs are handled below).
		if oi < n-1 && st.lastOut[oi] == -1 {
			e.rt.Life.Release(out.Storage(), finish)
		}
		if st.lastIn == oi {
			e.rt.Life.Release(blockIn.Storage(), finish)
		}
		for k := range extras {
			if st.lastExtra[k] == oi {
				e.rt.Life.Release(extras[k].Storage(), finish)
			}
		}

		e.rt.Counters.Add("exec.fwd_ops", 1)
	}

	// The block output carries one producer ref; add one ref per
	// downstream consumer, then drop the producer ref.
	out := run.ops[n-1].out
	for i := 0; i < e.consumer[bi]; i++ {
		e.rt.Life.Retain(out.Storage())
	}
	e.rt.Life.Release(out.Storage(), run.ops[n-1].finish)
	run.out = out

	e.hooks.ForwardPost(b.Module, *hostNow)
}

// saveForBackward evaluates an op's save flags, packing each tensor into
// rec.saved.
func (e *Executor) saveForBackward(rec *opRun, os *opStatic, b *Block, oi int, input, blockIn *tensor.Tensor, extras []*tensor.Tensor, run *blockRun, start, finish time.Duration, hostNow *time.Duration) {
	op := rec.spec
	out := rec.out
	if op.SaveInput {
		// The input was produced by an earlier op (or is the block input);
		// its data is complete by this op's start.
		rec.saved = append(rec.saved, e.pack(input, start, hostNow))
	}
	if op.SaveOutput {
		rec.saved = append(rec.saved, e.pack(out, finish, hostNow))
	}
	if op.SaveOther1 > 0 {
		rec.saved = append(rec.saved, e.pack(run.ops[op.SaveOther1-1].out, start, hostNow))
	}
	if op.SaveBlockInput {
		rec.saved = append(rec.saved, e.pack(blockIn, start, hostNow))
	}
	if op.SaveExtra1 > 0 {
		rec.saved = append(rec.saved, e.pack(extras[op.SaveExtra1-1], start, hostNow))
	}
	if op.SaveMask {
		mask := reviveInto(&rec.maskT, os.maskName, op.OutShape, tensor.BOOL)
		e.rt.Life.Alloc(start, mask.Storage(), gpu.ClassActivations)
		ref := e.pack(mask, finish, hostNow)
		e.rt.Life.Release(mask.Storage(), finish) // producer ref
		rec.saved = append(rec.saved, ref)
	}
	if op.SaveStatsElems > 0 {
		stats := reviveInto(&rec.statsT, os.statsName, os.statsShape, tensor.FP32)
		e.rt.Life.Alloc(start, stats.Storage(), gpu.ClassActivations)
		ref := e.pack(stats, finish, hostNow)
		e.rt.Life.Release(stats.Storage(), finish)
		rec.saved = append(rec.saved, ref)
	}
}

// backwardBlock executes one block's backward pass, consuming the
// incoming gradient. It returns the gradient wrt the block input and the
// completion time of the block's last backward kernel.
func (e *Executor) backwardBlock(run *blockRun, st *blockStatic, gradIn *tensor.Tensor, hostNow *time.Duration, stall *time.Duration, mb, bi int) (*tensor.Tensor, time.Duration) {
	b := run.block
	e.hooks.BackwardPre(b.Module, *hostNow)

	run.recMasks = run.recMasks[:0]
	if b.Checkpoint {
		// Resolve the block inputs, then re-run the forward chain.
		run.chkRefs = append(run.chkRefs[:0], run.inPacked)
		run.chkRefs = append(run.chkRefs, run.extraPacked...)
		e.unpackAll(run.chkRefs, hostNow, stall, stallCheckpointInputs)
		for oi := range b.Ops {
			op := &b.Ops[oi]
			*hostNow += e.rt.Spec.HostIssue
			finish := e.rt.Compute.Submit(*hostNow, op.FwdTime, nil)
			start := finish - op.FwdTime
			e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindRecompute, int32(bi), st.ops[oi].recName, start, finish, 0, 0)
			out := reviveInto(&run.ops[oi].recT, st.ops[oi].recName, op.OutShape, op.OutDType)
			e.rt.Life.Alloc(start, out.Storage(), gpu.ClassActivations)
			run.recomputed[oi] = out
			if op.SaveMask {
				m := reviveInto(&run.ops[oi].recMaskT, st.ops[oi].maskName, op.OutShape, tensor.BOOL)
				e.rt.Life.Alloc(start, m.Storage(), gpu.ClassActivations)
				run.recMasks = append(run.recMasks, m)
			}
			e.rt.Counters.Add("exec.recompute_ops", 1)
		}
	}

	grad := gradIn
	var lastFinish time.Duration
	for oi := len(b.Ops) - 1; oi >= 0; oi-- {
		op := &b.Ops[oi]
		var dataReady time.Duration
		if !b.Checkpoint {
			_, dataReady = e.unpackAll(run.ops[oi].saved, hostNow, stall, stallReloadWait)
		} else {
			dataReady = *hostNow
		}

		*hostNow += e.rt.Spec.HostIssue
		ready := *hostNow
		if dataReady > ready {
			ready = dataReady
		}
		finish := e.rt.Compute.Submit(ready, op.BwdTime, nil)
		start := finish - op.BwdTime
		e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindBackward, int32(bi), st.ops[oi].gradName, start, finish, 0, 0)
		lastFinish = finish

		// Gradient wrt this op's input.
		var inShape tensor.Shape
		var inDType tensor.DType
		if j := b.InputIndex(oi); j >= 0 {
			inShape, inDType = b.Ops[j].OutShape, b.Ops[j].OutDType
		} else {
			inShape, inDType = run.in.Shape(), run.in.DType()
		}
		gnext := reviveInto(&run.ops[oi].gradT, st.ops[oi].gradName, inShape, inDType)
		e.rt.Life.Alloc(start, gnext.Storage(), gpu.ClassWorkspace)

		// Weight gradient buffer, allocated on first backward touch and
		// retained across steps (frameworks keep .grad buffers resident);
		// a recycled arena revives the buffer instead of reallocating it.
		if op.Weight != nil {
			seq := op.Weight.Storage().Seq()
			if !e.gradAllocated[seq] {
				g, ok := e.gradOf[seq]
				if !ok {
					g = tensor.New(op.Weight.Name()+".grad", op.Weight.Shape(), op.Weight.DType(), tensor.GPU)
					e.gradOf[seq] = g
				} else {
					g.Storage().ResetForReuse()
				}
				e.rt.Life.Alloc(start, g.Storage(), gpu.ClassGradients)
				e.gradAllocated[seq] = true
			}
			gradDone := finish
			if mb > 0 {
				// Accumulation read-modify-write for later micro-batches.
				dur := e.cfg.AccumCost(op.Weight)
				af := e.rt.Compute.Submit(finish, dur, nil)
				e.rt.Rec.Span(e.rt.ComputeTrack, spans.KindAccum, int32(bi), op.Weight.Name(), af-dur, af, 0, 0)
				gradDone = af
			}
			if e.optim != nil && mb == e.cfg.MicroBatches-1 {
				e.gradLeft[seq]--
				if e.gradLeft[seq] == 0 {
					// The weight's final gradient is complete: hand it to the
					// offloaded pipeline so the download overlaps the rest of
					// backward.
					e.optim.GradReady(op.Weight, gradDone)
				}
			}
		}

		if !b.Checkpoint {
			e.consumeAll(run.ops[oi].saved, finish)
		} else {
			// Recomputed activations die with their consuming backward op.
			if rec := run.recomputed[oi]; rec != nil {
				e.rt.Life.Release(rec.Storage(), finish)
				run.recomputed[oi] = nil
			}
		}
		// The op's own forward output producer ref (non-checkpoint): block
		// outputs were transferred; intermediate outputs were released in
		// forward. Nothing to do here for them.

		// Consume the incoming gradient.
		e.rt.Life.Release(grad.Storage(), finish)
		grad = gnext
		e.rt.Counters.Add("exec.bwd_ops", 1)
	}

	if b.Checkpoint {
		// Release recomputed masks and the unpacked block inputs.
		for _, m := range run.recMasks {
			e.rt.Life.Release(m.Storage(), lastFinish)
		}
		run.chkRefs = append(run.chkRefs[:0], run.inPacked)
		run.chkRefs = append(run.chkRefs, run.extraPacked...)
		e.consumeAll(run.chkRefs, lastFinish)
	}

	e.hooks.BackwardPost(b.Module, *hostNow)
	return grad, lastFinish
}
