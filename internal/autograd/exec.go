package autograd

import (
	"fmt"
	"time"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// ExecConfig configures the training-step executor.
type ExecConfig struct {
	// MicroBatches per step (gradient accumulation); the paper's main
	// evaluation fixes this at 1 (§IV-A).
	MicroBatches int
	// UpdateCost returns the optimizer's per-weight kernel time.
	UpdateCost func(w *tensor.Tensor) time.Duration
	// AccumCost returns the per-weight gradient accumulation kernel time,
	// charged for every micro-batch after the first.
	AccumCost func(w *tensor.Tensor) time.Duration
	// Materialize backs saved activations with real deterministic bytes so
	// offload round-trips can be verified checksum-exactly.
	Materialize bool
	// Seed parameterizes materialized payloads.
	Seed uint64
}

// savedRef is one graph entry: the packed handle plus executor-side
// retention bookkeeping for raw (uncached) tensors.
type savedRef struct {
	packed      Packed
	t           *tensor.Tensor
	rawRetained bool
}

// opRun records one executed forward op.
type opRun struct {
	spec   *OpSpec
	saved  []savedRef
	finish time.Duration
	out    *tensor.Tensor
}

// blockRun records one executed forward block.
type blockRun struct {
	block  *Block
	ops    []opRun
	in     *tensor.Tensor
	extras []*tensor.Tensor
	out    *tensor.Tensor
	// inPacked/extraPacked are set for checkpointed blocks: the block
	// inputs are the only saved tensors (PyTorch checkpointing saves the
	// function's arguments).
	inPacked    savedRef
	extraPacked []savedRef
}

// Executor drives training steps of a Graph on a Runtime through the
// Hooks surface. It reproduces the host/device split of the real stack:
// the host issues kernels ahead of the device, blocks on unpacked tensors
// that are still loading, and charges hook CPU costs to host time — which
// is how the paper's "negligible overhead" claim becomes measurable here.
type Executor struct {
	rt    *Runtime
	graph *Graph
	hooks Hooks
	cfg   ExecConfig

	clock    time.Duration // start of the next step
	stepIdx  int
	seed     uint64
	gradOf   map[int64]*tensor.Tensor // weight storage seq → grad tensor
	consumer map[int]int              // block index → forward consumer count
}

// NewExecutor validates the graph, allocates weights (and their
// gradient buffers lazily), and returns an executor.
func NewExecutor(rt *Runtime, g *Graph, hooks Hooks, cfg ExecConfig) (*Executor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if hooks == nil {
		hooks = NoHooks{}
	}
	if cfg.MicroBatches <= 0 {
		cfg.MicroBatches = 1
	}
	if cfg.UpdateCost == nil {
		cfg.UpdateCost = func(*tensor.Tensor) time.Duration { return 0 }
	}
	if cfg.AccumCost == nil {
		cfg.AccumCost = func(*tensor.Tensor) time.Duration { return 0 }
	}
	e := &Executor{
		rt:     rt,
		graph:  g,
		hooks:  hooks,
		cfg:    cfg,
		seed:   cfg.Seed,
		gradOf: make(map[int64]*tensor.Tensor),
	}
	for _, w := range g.Weights() {
		rt.Life.Alloc(0, w.Storage(), gpu.ClassWeights)
	}
	e.computeConsumers()
	return e, nil
}

// computeConsumers precomputes forward fan-out per block output.
func (e *Executor) computeConsumers() {
	e.consumer = make(map[int]int)
	for bi, b := range e.graph.Blocks {
		// The chained successor, or the loss/backward seed for the final
		// block, consumes every block output exactly once.
		e.consumer[bi]++
		for _, x := range b.ExtraIn {
			e.consumer[x]++
		}
	}
}

// StepResult reports one executed step.
type StepResult struct {
	Stats trace.StepStats
	// HostTime is where the host clock ended relative to step start.
	HostTime time.Duration
	// UpdateTime is the optimizer phase duration (weight updates).
	UpdateTime time.Duration
	// StoreDrain is when outstanding offload writes finish (may exceed
	// step end; the next step's forward overlaps it).
	Start time.Duration
	End   time.Duration
}

// Run executes one training step and returns its result. Successive calls
// continue on the same virtual timeline.
func (e *Executor) Run() StepResult {
	start := e.clock
	hostNow := start
	e.stepIdx++
	var stall time.Duration
	var modelFLOPs units.FLOPs

	e.hooks.Phase(PhaseStepStart, 0, hostNow)

	for mb := 0; mb < e.cfg.MicroBatches; mb++ {
		e.hooks.Phase(PhaseForward, mb, hostNow)

		// Graph input (token ids). It carries a producer ref plus one
		// consumer ref for the first block.
		in := tensor.New(fmt.Sprintf("step%d.mb%d.input", e.stepIdx, mb), e.graph.InputShape, e.graph.InputDType, tensor.GPU)
		e.rt.Life.Alloc(hostNow, in.Storage(), gpu.ClassWorkspace)
		e.rt.Life.Retain(in.Storage())

		runs := make([]blockRun, len(e.graph.Blocks))
		outs := make([]*tensor.Tensor, len(e.graph.Blocks))
		finishes := make([]time.Duration, len(e.graph.Blocks))
		cur, curFinish := in, hostNow
		for bi, b := range e.graph.Blocks {
			extras := make([]*tensor.Tensor, len(b.ExtraIn))
			extraFinish := make([]time.Duration, len(b.ExtraIn))
			for k, src := range b.ExtraIn {
				extras[k] = outs[src]
				extraFinish[k] = finishes[src]
			}
			runs[bi] = e.forwardBlock(b, bi, cur, curFinish, extras, extraFinish, &hostNow, &modelFLOPs)
			outs[bi] = runs[bi].out
			finishes[bi] = runs[bi].ops[len(runs[bi].ops)-1].finish
			cur, curFinish = runs[bi].out, finishes[bi]
		}
		// The graph input's producer ref: released after the first block's
		// first op consumed it.
		e.rt.Life.Release(in.Storage(), runs[0].ops[0].finish)

		// Backward. The host synchronizes with the device at the
		// forward→backward boundary: FP16 training engines read the loss
		// and the loss-scale overflow flag on the host here, which is a
		// device sync (Megatron-DeepSpeed behaviour). The sync also
		// anchors the tensor cache's forwarding decisions to real store
		// progress instead of the host's run-ahead clock.
		if bu := e.rt.Compute.BusyUntil(); bu > hostNow {
			hostNow = bu
		}
		e.hooks.Phase(PhaseBackward, mb, hostNow)
		final := outs[len(outs)-1]
		finalFinish := finishes[len(finishes)-1]
		// Loss gradient seed, shaped like the final output.
		grad := tensor.New(fmt.Sprintf("step%d.mb%d.gradseed", e.stepIdx, mb), final.Shape(), final.DType(), tensor.GPU)
		e.rt.Life.Alloc(hostNow, grad.Storage(), gpu.ClassWorkspace)
		// The loss consumer ref on the final output: the gradient seed's
		// computation reads it once the forward output exists.
		relAt := hostNow
		if finalFinish > relAt {
			relAt = finalFinish
		}
		e.rt.Life.Release(final.Storage(), relAt)

		var bwdEnd time.Duration
		for bi := len(runs) - 1; bi >= 0; bi-- {
			grad, bwdEnd = e.backwardBlock(&runs[bi], grad, &hostNow, &stall, mb)
		}
		// The gradient wrt the graph input is discarded once its producing
		// kernel completes.
		e.rt.Life.Release(grad.Storage(), bwdEnd)
		for bi := range runs {
			modelFLOPs += e.backwardFLOPs(runs[bi].block)
		}
	}

	// Optimizer.
	bwdEndAll := e.rt.Compute.BusyUntil()
	e.hooks.Phase(PhaseOptimizer, 0, hostNow)
	for _, w := range e.graph.Weights() {
		hostNow += e.rt.Spec.HostIssue
		e.rt.Compute.Submit(hostNow, e.cfg.UpdateCost(w), nil)
	}
	end := e.rt.Compute.BusyUntil()
	if hostNow > end {
		end = hostNow
	}
	e.hooks.Phase(PhaseStepEnd, 0, end)
	e.clock = end

	return StepResult{
		Stats: trace.StepStats{
			StepTime:     end - start,
			ModelFLOPs:   modelFLOPs,
			ComputeStall: stall,
		},
		HostTime:   hostNow - start,
		UpdateTime: end - bwdEndAll,
		Start:      start,
		End:        end,
	}
}

func (e *Executor) backwardFLOPs(b *Block) units.FLOPs {
	var f units.FLOPs
	for i := range b.Ops {
		f += b.Ops[i].BwdFLOPs
	}
	return f
}

// materialize optionally backs a tensor with deterministic bytes.
func (e *Executor) materialize(t *tensor.Tensor) {
	if e.cfg.Materialize && t.Storage().Data() == nil {
		e.seed++
		t.Storage().Materialize(e.seed)
	}
}

// pack routes a tensor through the pack hook and applies the executor's
// retention rule for raw returns: non-weight GPU tensors stored raw on
// the graph are kept alive by the graph until consumed.
func (e *Executor) pack(t *tensor.Tensor, producedAt time.Duration, hostNow *time.Duration) savedRef {
	e.materialize(t)
	*hostNow += e.hooks.HostCost()
	p := e.hooks.Pack(t, producedAt, *hostNow)
	ref := savedRef{packed: p, t: t}
	if raw, ok := p.(*tensor.Tensor); ok {
		if !raw.IsWeight() && !raw.IsCPU() {
			e.rt.Life.Retain(raw.Storage())
			ref.rawRetained = true
		}
	}
	e.rt.Counters.Add("exec.packs", 1)
	return ref
}

// unpackAll resolves an op's saved refs, blocking host time on reloads,
// and returns the data-ready lower bound for the backward kernel.
func (e *Executor) unpackAll(saved []savedRef, hostNow *time.Duration, stall *time.Duration) ([]*tensor.Tensor, time.Duration) {
	base := *hostNow
	if bu := e.rt.Compute.BusyUntil(); bu > base {
		base = bu
	}
	dataReady := *hostNow
	tensors := make([]*tensor.Tensor, len(saved))
	for i := range saved {
		*hostNow += e.hooks.HostCost()
		t, ready := e.hooks.Unpack(saved[i].packed, *hostNow)
		if t == nil {
			panic(fmt.Sprintf("autograd: unpack returned nil for %v", saved[i].t))
		}
		tensors[i] = t
		if ready > dataReady {
			dataReady = ready
		}
		if ready > *hostNow {
			*hostNow = ready // host blocks until the load completes
		}
		e.rt.Counters.Add("exec.unpacks", 1)
	}
	if dataReady > base {
		*stall += dataReady - base
	}
	return tensors, dataReady
}

// consumeAll releases an op's saved refs after its backward kernel
// finished at the given time.
func (e *Executor) consumeAll(saved []savedRef, at time.Duration) {
	for i := range saved {
		e.hooks.Consumed(saved[i].packed, at)
		if saved[i].rawRetained {
			e.rt.Life.Release(saved[i].t.Storage(), at)
		}
	}
}

// forwardBlock executes one block's forward pass. inFinish/extraFinish
// are when the inputs' producing kernels complete (transfer-ready times).
func (e *Executor) forwardBlock(b *Block, bi int, blockIn *tensor.Tensor, inFinish time.Duration, extras []*tensor.Tensor, extraFinish []time.Duration, hostNow *time.Duration, modelFLOPs *units.FLOPs) blockRun {
	e.hooks.ForwardPre(b.Module, *hostNow)
	run := blockRun{block: b, in: blockIn, extras: extras, ops: make([]opRun, len(b.Ops))}

	if b.Checkpoint {
		// Only the block inputs are registered for backward.
		run.inPacked = e.pack(blockIn, inFinish, hostNow)
		for k := range extras {
			run.extraPacked = append(run.extraPacked, e.pack(extras[k], extraFinish[k], hostNow))
		}
	}

	// Prepass: the last forward consumer of every op output, of the block
	// input, and of each extra input, so producer references can be
	// released at exactly the right kernel completion.
	n := len(b.Ops)
	lastOut := make([]int, n)
	for j := range lastOut {
		lastOut[j] = -1
	}
	lastIn := 0
	lastExtra := make([]int, len(extras))
	for k := range lastExtra {
		lastExtra[k] = -1
	}
	for oi := range b.Ops {
		op := &b.Ops[oi]
		if j := b.InputIndex(oi); j >= 0 {
			if oi > lastOut[j] {
				lastOut[j] = oi
			}
		} else if oi > lastIn {
			lastIn = oi
		}
		if s := op.SaveOther1 - 1; s >= 0 && oi > lastOut[s] {
			lastOut[s] = oi
		}
		if op.SaveBlockInput && oi > lastIn {
			lastIn = oi
		}
		if k := op.SaveExtra1 - 1; k >= 0 && oi > lastExtra[k] {
			lastExtra[k] = oi
		}
	}

	outs := make([]*tensor.Tensor, n)
	for oi := range b.Ops {
		op := &b.Ops[oi]
		input := blockIn
		if j := b.InputIndex(oi); j >= 0 {
			input = outs[j]
		}
		*hostNow += e.rt.Spec.HostIssue
		finish := e.rt.Compute.Submit(*hostNow, op.FwdTime, nil)
		start := finish - op.FwdTime
		*modelFLOPs += op.FwdFLOPs

		out := tensor.New(fmt.Sprintf("s%d.%s.%s", e.stepIdx, b.Module.Path(), op.Name),
			op.OutShape, op.OutDType, tensor.GPU)
		e.rt.Life.Alloc(start, out.Storage(), gpu.ClassActivations)
		outs[oi] = out
		rec := opRun{spec: op, finish: finish, out: out}

		if !b.Checkpoint {
			rec.saved = e.saveForBackward(b, oi, input, blockIn, extras, outs, start, finish, hostNow)
		}

		// Weight transpose views are registered on the graph by linear
		// layers even under checkpointing (PyTorch re-registers during
		// recomputation; net effect on the cache is identical).
		if op.Weight != nil && !b.Checkpoint {
			wt := op.Weight.Transpose()
			rec.saved = append(rec.saved, e.pack(wt, finish, hostNow))
		}

		// Release producer refs whose last forward consumer is this op.
		for j := 0; j < oi; j++ {
			if lastOut[j] == oi {
				e.rt.Life.Release(outs[j].Storage(), finish)
			}
		}
		// An output nothing consumes dies with its own producing op
		// (unless it is the block output, whose refs are handled below).
		if oi < n-1 && lastOut[oi] == -1 {
			e.rt.Life.Release(out.Storage(), finish)
		}
		if lastIn == oi {
			e.rt.Life.Release(blockIn.Storage(), finish)
		}
		for k := range extras {
			if lastExtra[k] == oi {
				e.rt.Life.Release(extras[k].Storage(), finish)
			}
		}

		run.ops[oi] = rec
		e.rt.Counters.Add("exec.fwd_ops", 1)
	}

	// The block output carries one producer ref; add one ref per
	// downstream consumer, then drop the producer ref.
	out := outs[n-1]
	for i := 0; i < e.consumer[bi]; i++ {
		e.rt.Life.Retain(out.Storage())
	}
	e.rt.Life.Release(out.Storage(), run.ops[n-1].finish)
	run.out = out

	e.hooks.ForwardPost(b.Module, *hostNow)
	return run
}

// saveForBackward evaluates an op's save flags, packing each tensor.
func (e *Executor) saveForBackward(b *Block, oi int, input, blockIn *tensor.Tensor, extras []*tensor.Tensor, outs []*tensor.Tensor, start, finish time.Duration, hostNow *time.Duration) []savedRef {
	op := &b.Ops[oi]
	out := outs[oi]
	var saved []savedRef
	if op.SaveInput {
		// The input was produced by an earlier op (or is the block input);
		// its data is complete by this op's start.
		saved = append(saved, e.pack(input, start, hostNow))
	}
	if op.SaveOutput {
		saved = append(saved, e.pack(out, finish, hostNow))
	}
	if op.SaveOther1 > 0 {
		saved = append(saved, e.pack(outs[op.SaveOther1-1], start, hostNow))
	}
	if op.SaveBlockInput {
		saved = append(saved, e.pack(blockIn, start, hostNow))
	}
	if op.SaveExtra1 > 0 {
		saved = append(saved, e.pack(extras[op.SaveExtra1-1], start, hostNow))
	}
	if op.SaveMask {
		mask := tensor.New(out.Name()+".mask", op.OutShape, tensor.BOOL, tensor.GPU)
		e.rt.Life.Alloc(start, mask.Storage(), gpu.ClassActivations)
		ref := e.pack(mask, finish, hostNow)
		e.rt.Life.Release(mask.Storage(), finish) // producer ref
		saved = append(saved, ref)
	}
	if op.SaveStatsElems > 0 {
		stats := tensor.New(out.Name()+".stats", tensor.NewShape(int(op.SaveStatsElems)), tensor.FP32, tensor.GPU)
		e.rt.Life.Alloc(start, stats.Storage(), gpu.ClassActivations)
		ref := e.pack(stats, finish, hostNow)
		e.rt.Life.Release(stats.Storage(), finish)
		saved = append(saved, ref)
	}
	return saved
}

// backwardBlock executes one block's backward pass, consuming the
// incoming gradient. It returns the gradient wrt the block input and the
// completion time of the block's last backward kernel.
func (e *Executor) backwardBlock(run *blockRun, gradIn *tensor.Tensor, hostNow *time.Duration, stall *time.Duration, mb int) (*tensor.Tensor, time.Duration) {
	b := run.block
	e.hooks.BackwardPre(b.Module, *hostNow)

	recomputed := make([]*tensor.Tensor, len(b.Ops))
	var recMasks []*tensor.Tensor
	if b.Checkpoint {
		// Resolve the block inputs, then re-run the forward chain.
		inputs := append([]savedRef{run.inPacked}, run.extraPacked...)
		ts, _ := e.unpackAll(inputs, hostNow, stall)
		in := ts[0]
		prev := in
		for oi := range b.Ops {
			op := &b.Ops[oi]
			*hostNow += e.rt.Spec.HostIssue
			finish := e.rt.Compute.Submit(*hostNow, op.FwdTime, nil)
			start := finish - op.FwdTime
			out := tensor.New(fmt.Sprintf("s%d.%s.%s.rec", e.stepIdx, b.Module.Path(), op.Name),
				op.OutShape, op.OutDType, tensor.GPU)
			e.rt.Life.Alloc(start, out.Storage(), gpu.ClassActivations)
			recomputed[oi] = out
			if op.SaveMask {
				m := tensor.New(out.Name()+".mask", op.OutShape, tensor.BOOL, tensor.GPU)
				e.rt.Life.Alloc(start, m.Storage(), gpu.ClassActivations)
				recMasks = append(recMasks, m)
			}
			prev = out
			e.rt.Counters.Add("exec.recompute_ops", 1)
		}
		_ = prev
	}

	grad := gradIn
	var lastFinish time.Duration
	for oi := len(b.Ops) - 1; oi >= 0; oi-- {
		op := &b.Ops[oi]
		var dataReady time.Duration
		var saved []*tensor.Tensor
		if !b.Checkpoint {
			saved, dataReady = e.unpackAll(run.ops[oi].saved, hostNow, stall)
		} else {
			dataReady = *hostNow
		}
		_ = saved

		*hostNow += e.rt.Spec.HostIssue
		ready := *hostNow
		if dataReady > ready {
			ready = dataReady
		}
		finish := e.rt.Compute.Submit(ready, op.BwdTime, nil)
		start := finish - op.BwdTime
		lastFinish = finish

		// Gradient wrt this op's input.
		var inShape tensor.Shape
		var inDType tensor.DType
		if j := b.InputIndex(oi); j >= 0 {
			inShape, inDType = b.Ops[j].OutShape, b.Ops[j].OutDType
		} else {
			inShape, inDType = run.in.Shape(), run.in.DType()
		}
		gnext := tensor.New(fmt.Sprintf("s%d.%s.%s.grad", e.stepIdx, b.Module.Path(), op.Name),
			inShape, inDType, tensor.GPU)
		e.rt.Life.Alloc(start, gnext.Storage(), gpu.ClassWorkspace)

		// Weight gradient buffer, allocated on first backward touch and
		// retained across steps (frameworks keep .grad buffers resident).
		if op.Weight != nil {
			seq := op.Weight.Storage().Seq()
			if _, ok := e.gradOf[seq]; !ok {
				g := tensor.New(op.Weight.Name()+".grad", op.Weight.Shape(), op.Weight.DType(), tensor.GPU)
				e.rt.Life.Alloc(start, g.Storage(), gpu.ClassGradients)
				e.gradOf[seq] = g
			}
			if mb > 0 {
				// Accumulation read-modify-write for later micro-batches.
				e.rt.Compute.Submit(finish, e.cfg.AccumCost(op.Weight), nil)
			}
		}

		if !b.Checkpoint {
			e.consumeAll(run.ops[oi].saved, finish)
		} else {
			// Recomputed activations die with their consuming backward op.
			if rec := recomputed[oi]; rec != nil {
				e.rt.Life.Release(rec.Storage(), finish)
			}
		}
		// The op's own forward output producer ref (non-checkpoint): block
		// outputs were transferred; intermediate outputs were released in
		// forward. Nothing to do here for them.

		// Consume the incoming gradient.
		e.rt.Life.Release(grad.Storage(), finish)
		grad = gnext
		e.rt.Counters.Add("exec.bwd_ops", 1)
	}

	if b.Checkpoint {
		// Release recomputed masks and the unpacked block inputs.
		for _, m := range recMasks {
			e.rt.Life.Release(m.Storage(), lastFinish)
		}
		e.consumeAll(append([]savedRef{run.inPacked}, run.extraPacked...), lastFinish)
	}

	e.hooks.BackwardPost(b.Module, *hostNow)
	return grad, lastFinish
}
