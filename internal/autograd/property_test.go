package autograd

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/tensor"
)

// randomGraph builds a structurally valid graph from fuzz input: a chain
// of blocks whose ops carry randomized save flags, weights and shapes.
func randomGraph(blocks []uint8) *Graph {
	root := NewModule("fuzz")
	g := &Graph{
		Name:       "fuzz",
		Root:       root,
		InputShape: tensor.NewShape(4, 64),
		InputDType: tensor.INT32,
	}
	n := len(blocks)
	if n == 0 {
		n = 1
		blocks = []uint8{0}
	}
	if n > 6 {
		n = 6
		blocks = blocks[:6]
	}
	for bi := 0; bi < n; bi++ {
		sel := blocks[bi]
		nops := int(sel%3) + 1
		var ops []OpSpec
		for oi := 0; oi < nops; oi++ {
			op := OpSpec{
				Name:     fmt.Sprintf("op%d", oi),
				FwdTime:  time.Duration(sel%5+1) * 100 * time.Microsecond,
				BwdTime:  time.Duration(sel%7+1) * 100 * time.Microsecond,
				FwdFLOPs: 1e6,
				BwdFLOPs: 2e6,
				OutShape: tensor.NewShape(4, 64, int(sel%4+1)*32),
				OutDType: tensor.FP16,
			}
			switch (int(sel) + oi) % 5 {
			case 0:
				op.SaveInput = true
			case 1:
				op.SaveOutput = true
			case 2:
				op.SaveMask = true
			case 3:
				op.SaveInput = true
				op.SaveStatsElems = 64
			case 4:
				op.Weight = tensor.NewWeight(fmt.Sprintf("w%d_%d", bi, oi),
					tensor.NewShape(32, 32), tensor.FP16, tensor.GPU)
			}
			if oi > 0 && sel%4 == 3 {
				op.InputFrom1 = 1 // branch back to the first op's output
			}
			ops = append(ops, op)
		}
		g.Blocks = append(g.Blocks, &Block{
			Module:     root.Child(fmt.Sprintf("b%d", bi)),
			Ops:        ops,
			Checkpoint: sel%8 == 7,
		})
	}
	return g
}

// TestExecutorLeakFreeProperty runs randomized graphs and asserts the
// executor's core invariants: validation accepts what randomGraph builds,
// steps have positive duration, only weights+grads stay resident, and
// repeated runs on the same graph are deterministic.
func TestExecutorLeakFreeProperty(t *testing.T) {
	f := func(blocks []uint8, microBatches uint8) bool {
		g := randomGraph(blocks)
		if err := g.Validate(); err != nil {
			return false
		}
		mb := int(microBatches%3) + 1
		run := func() (StepResult, *Runtime) {
			rt := newTestRuntime()
			ex, err := NewExecutor(rt, g, nil, ExecConfig{MicroBatches: mb})
			if err != nil {
				return StepResult{}, nil
			}
			return ex.Run(), rt
		}
		r1, rt1 := run()
		if rt1 == nil {
			return false
		}
		if r1.Stats.StepTime <= 0 {
			return false
		}
		if rt1.Alloc.LiveBytes() != g.WeightBytes()*2 {
			return false // leak: anything beyond weights+grads survived
		}
		r2, _ := run()
		return r1.Stats.StepTime == r2.Stats.StepTime &&
			r1.Stats.ModelFLOPs == r2.Stats.ModelFLOPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestExecutorFLOPsInvariantProperty: model FLOPs are independent of the
// checkpoint flag (recomputation is not algorithmic work) and scale
// linearly with micro-batches.
func TestExecutorFLOPsInvariantProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		g := randomGraph(blocks)
		run := func(checkpoint bool, mb int) StepResult {
			gg := randomGraph(blocks)
			for _, b := range gg.Blocks {
				b.Checkpoint = checkpoint
			}
			rt := newTestRuntime()
			ex, err := NewExecutor(rt, gg, nil, ExecConfig{MicroBatches: mb})
			if err != nil {
				panic(err)
			}
			return ex.Run()
		}
		_ = g
		plain := run(false, 1)
		ckpt := run(true, 1)
		double := run(false, 2)
		if plain.Stats.ModelFLOPs != ckpt.Stats.ModelFLOPs {
			return false
		}
		return double.Stats.ModelFLOPs == 2*plain.Stats.ModelFLOPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
