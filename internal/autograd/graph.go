package autograd

import (
	"fmt"
	"time"

	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// OpSpec describes one GPU operator in a block: its forward/backward cost
// and which tensors it registers on the computation graph for backward
// (the tensors the pack hook sees). Ops within a block form a chain — op
// i's input is op i-1's output (op 0 consumes the block input) — with
// explicit extra edges for residual connections and cross-attention.
type OpSpec struct {
	Name string

	// FwdTime/BwdTime are kernel execution times from the GPU cost model.
	FwdTime time.Duration
	BwdTime time.Duration
	// FwdFLOPs/BwdFLOPs are the algorithmic work, counted into model
	// throughput (recomputation is excluded by the executor).
	FwdFLOPs units.FLOPs
	BwdFLOPs units.FLOPs

	// OutShape/OutDType describe the op's output activation.
	OutShape tensor.Shape
	OutDType tensor.DType

	// InputFrom1, when positive, makes this op consume the output of op
	// InputFrom1-1 in the same block instead of the immediately preceding
	// op (1-based so the zero value keeps chain semantics). Cross-attention
	// query/kv projections both consume the cross-LayerNorm output this way.
	InputFrom1 int

	// SaveOutput registers the op's own output for backward.
	SaveOutput bool
	// SaveInput registers the op's input (previous op's output, or the op
	// named by InputFrom1).
	SaveInput bool
	// SaveOther1, when positive, additionally registers the output of op
	// SaveOther1-1 in the same block (1-based; zero means none). Fused
	// cross-attention saves the kv projection's output this way.
	SaveOther1 int
	// SaveBlockInput registers the block's input tensor (residual
	// connections); this deliberately packs a tensor that another op may
	// also have packed, exercising the cache's deduplication.
	SaveBlockInput bool
	// SaveExtra1, when positive, registers extra block input SaveExtra1-1
	// (1-based so the zero value means "none"). Cross-attention uses this
	// to save the encoder output — the same tensor in every decoder
	// layer, the paper's headline dedup case.
	SaveExtra1 int
	// SaveMask additionally saves a bool mask shaped like the output
	// (dropout).
	SaveMask bool
	// SaveStatsElems additionally saves a small fp32 stats tensor with
	// this many elements (LayerNorm mean/rstd); small tensors take the
	// pack hook's early-return path (Alg. 1 line 2).
	SaveStatsElems int64

	// Weight, when non-nil, is the parameter consumed by this op; its
	// transposed view is registered for backward exactly like PyTorch
	// linear layers do (§III-C1), and the optimizer updates it at step
	// end.
	Weight *tensor.Tensor
}

// Validate checks internal consistency.
func (o *OpSpec) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("autograd: op with empty name")
	}
	if o.FwdTime < 0 || o.BwdTime < 0 {
		return fmt.Errorf("autograd: op %s has negative time", o.Name)
	}
	if len(o.OutShape) == 0 {
		return fmt.Errorf("autograd: op %s has no output shape", o.Name)
	}
	return nil
}

// OutBytes returns the output activation size.
func (o *OpSpec) OutBytes() units.Bytes {
	return units.Bytes(o.OutShape.NumElems() * int64(o.OutDType.Size()))
}

// Block is a checkpointable unit of the model — a transformer layer, the
// embedding, or the head. Blocks are the granularity at which the tensor
// cache tracks scopes and prefetches, and at which activation
// checkpointing recomputes.
type Block struct {
	Module *Module
	Ops    []OpSpec
	// Checkpoint marks the block for layerwise recomputation: forward
	// saves only the block input; backward re-runs forward first.
	Checkpoint bool
	// ExtraIn lists indices of earlier blocks whose outputs this block
	// consumes in addition to its direct predecessor (cross-attention).
	ExtraIn []int
}

// InputIndex returns the block-local index of op oi's input: -1 for the
// block input, otherwise the producing op's index.
func (b *Block) InputIndex(oi int) int {
	if f := b.Ops[oi].InputFrom1; f > 0 {
		return f - 1
	}
	return oi - 1
}

// SavedBytes returns the total bytes this block registers for backward in
// normal (non-checkpoint) execution, excluding weights. Duplicate
// registrations of the same tensor (the dedup cases) are counted once.
func (b *Block) SavedBytes(blockInBytes units.Bytes, extraBytes []units.Bytes) units.Bytes {
	var total units.Bytes
	// savedOut/savedIn/savedExtra dedup repeated registrations.
	savedOut := make(map[int]bool)
	savedIn := false
	savedExtra := make(map[int]bool)
	inBytes := func(oi int) units.Bytes {
		if j := b.InputIndex(oi); j >= 0 {
			return b.Ops[j].OutBytes()
		}
		return blockInBytes
	}
	saveOut := func(j int) {
		if j >= 0 && !savedOut[j] {
			savedOut[j] = true
			total += b.Ops[j].OutBytes()
		}
	}
	for i := range b.Ops {
		op := &b.Ops[i]
		if op.SaveInput {
			if j := b.InputIndex(i); j >= 0 {
				saveOut(j)
			} else if !savedIn {
				savedIn = true
				total += inBytes(i)
			}
		}
		if op.SaveOutput {
			saveOut(i)
		}
		if op.SaveOther1 > 0 {
			saveOut(op.SaveOther1 - 1)
		}
		if op.SaveBlockInput && !savedIn {
			savedIn = true
			total += blockInBytes
		}
		if k := op.SaveExtra1 - 1; k >= 0 && k < len(extraBytes) && !savedExtra[k] {
			savedExtra[k] = true
			total += extraBytes[k]
		}
		if op.SaveMask {
			total += units.Bytes(op.OutShape.NumElems()) // bool mask
		}
		if op.SaveStatsElems > 0 {
			total += units.Bytes(op.SaveStatsElems * 4)
		}
	}
	return total
}

// FwdFLOPs sums the block's forward work.
func (b *Block) FwdFLOPs() units.FLOPs {
	var f units.FLOPs
	for i := range b.Ops {
		f += b.Ops[i].FwdFLOPs
	}
	return f
}

// FwdTime sums the block's forward kernel time.
func (b *Block) FwdTime() time.Duration {
	var t time.Duration
	for i := range b.Ops {
		t += b.Ops[i].FwdTime
	}
	return t
}

// Graph is the per-micro-batch op program of a model: an ordered list of
// blocks. The same Graph is re-executed every micro-batch and step; all
// shapes are static, as in the paper's pretraining workloads.
type Graph struct {
	Name   string
	Root   *Module
	Blocks []*Block
	// InputShape/InputDType describe the graph input (token ids).
	InputShape tensor.Shape
	InputDType tensor.DType
}

// Validate checks the graph.
func (g *Graph) Validate() error {
	if len(g.Blocks) == 0 {
		return fmt.Errorf("autograd: graph %s has no blocks", g.Name)
	}
	for bi, b := range g.Blocks {
		if b.Module == nil {
			return fmt.Errorf("autograd: graph %s block %d has no module", g.Name, bi)
		}
		if len(b.Ops) == 0 {
			return fmt.Errorf("autograd: graph %s block %s has no ops", g.Name, b.Module.Path())
		}
		for i := range b.Ops {
			if err := b.Ops[i].Validate(); err != nil {
				return fmt.Errorf("graph %s block %s: %w", g.Name, b.Module.Path(), err)
			}
			if x := b.Ops[i].SaveExtra1; x > len(b.ExtraIn) {
				return fmt.Errorf("graph %s block %s op %s: SaveExtra1 %d out of range",
					g.Name, b.Module.Path(), b.Ops[i].Name, x)
			}
			if f := b.Ops[i].InputFrom1; f > i {
				return fmt.Errorf("graph %s block %s op %s: InputFrom1 %d must reference an earlier op",
					g.Name, b.Module.Path(), b.Ops[i].Name, f)
			}
			if s := b.Ops[i].SaveOther1; s > i {
				return fmt.Errorf("graph %s block %s op %s: SaveOther1 %d must reference an earlier op",
					g.Name, b.Module.Path(), b.Ops[i].Name, s)
			}
		}
		for _, e := range b.ExtraIn {
			if e < 0 || e >= bi {
				return fmt.Errorf("graph %s block %d: extra input %d must reference an earlier block", g.Name, bi, e)
			}
		}
		// Every extra input must be consumed by exactly one op: the
		// executor pairs one reference release with each SaveExtra.
		uses := make(map[int]int)
		for i := range b.Ops {
			if x := b.Ops[i].SaveExtra1; x > 0 {
				uses[x-1]++
			}
		}
		for k := range b.ExtraIn {
			if uses[k] != 1 {
				return fmt.Errorf("graph %s block %d: extra input %d consumed %d times (want 1)", g.Name, bi, k, uses[k])
			}
		}
	}
	return nil
}

// CloneWithFreshWeights returns a graph that shares this graph's module
// tree and op specs (both immutable after construction) but rebinds every
// weight tensor onto a fresh storage. Weight tying is preserved: views
// that shared a storage in the source (the embedding table and the
// transposed LM head) share one fresh storage in the clone. This is what
// lets a compiled run plan keep one immutable graph template and stamp
// out an executable copy per measurement — executions mutate weight
// storages (reference counts, cache stamps), so they can never share
// them, but everything else costs nothing to share.
func (g *Graph) CloneWithFreshWeights() *Graph {
	clone := &Graph{
		Name:       g.Name,
		Root:       g.Root,
		InputShape: g.InputShape,
		InputDType: g.InputDType,
		Blocks:     make([]*Block, len(g.Blocks)),
	}
	rebound := make(map[*tensor.Storage]*tensor.Storage)
	for bi, b := range g.Blocks {
		nb := &Block{
			Module:     b.Module,
			Ops:        make([]OpSpec, len(b.Ops)),
			Checkpoint: b.Checkpoint,
			ExtraIn:    b.ExtraIn,
		}
		copy(nb.Ops, b.Ops)
		for i := range nb.Ops {
			w := nb.Ops[i].Weight
			if w == nil {
				continue
			}
			s, ok := rebound[w.Storage()]
			if !ok {
				s = tensor.NewStorage(w.Storage().Bytes(), w.Storage().Device())
				rebound[w.Storage()] = s
			}
			nb.Ops[i].Weight = w.WithStorage(s)
		}
		clone.Blocks[bi] = nb
	}
	return clone
}

// Weights returns every distinct parameter tensor in graph order.
func (g *Graph) Weights() []*tensor.Tensor {
	seen := make(map[int64]bool)
	var ws []*tensor.Tensor
	for _, b := range g.Blocks {
		for i := range b.Ops {
			if w := b.Ops[i].Weight; w != nil && !seen[w.Storage().Seq()] {
				seen[w.Storage().Seq()] = true
				ws = append(ws, w)
			}
		}
	}
	return ws
}

// WeightBytes sums parameter sizes.
func (g *Graph) WeightBytes() units.Bytes {
	var n units.Bytes
	for _, w := range g.Weights() {
		n += w.Bytes()
	}
	return n
}

// ModelFLOPsPerMicroBatch returns forward+backward algorithmic work.
func (g *Graph) ModelFLOPsPerMicroBatch() units.FLOPs {
	var f units.FLOPs
	for _, b := range g.Blocks {
		for i := range b.Ops {
			f += b.Ops[i].FwdFLOPs + b.Ops[i].BwdFLOPs
		}
	}
	return f
}
