package autograd

import (
	"time"

	"ssdtrain/internal/tensor"
)

// Packed is what the pack hook returns and the computation graph stores in
// place of a saved tensor. It is either the original *tensor.Tensor (the
// early-return path of Alg. 1: weights, CPU tensors, small tensors, or no
// cache installed) or an opaque handle owned by the hook implementation
// (the tensor cache's tensor identifier).
type Packed any

// PhaseEvent is a scheduler hint (§III-A ③④): the executor announces
// coarse training phases so the hook implementation can switch
// micro-batch records, start prefetching, or finalize the step.
type PhaseEvent uint8

// Phase events, in the order they occur within a step.
const (
	// PhaseStepStart begins a training step.
	PhaseStepStart PhaseEvent = iota
	// PhaseForward begins a micro-batch's forward propagation.
	PhaseForward
	// PhaseBackward begins a micro-batch's backward propagation.
	PhaseBackward
	// PhaseOptimizer begins the weight update.
	PhaseOptimizer
	// PhaseStepEnd ends the step (optimizer complete).
	PhaseStepEnd
)

// String names the event.
func (p PhaseEvent) String() string {
	switch p {
	case PhaseStepStart:
		return "step-start"
	case PhaseForward:
		return "forward"
	case PhaseBackward:
		return "backward"
	case PhaseOptimizer:
		return "optimizer"
	case PhaseStepEnd:
		return "step-end"
	default:
		return "phase(?)"
	}
}

// Hooks is the extension surface the executor exposes — the union of
// PyTorch's module hooks, saved-tensor pack/unpack hooks, and the
// scheduler hints SSDTrain monkey-patches in. All times are virtual.
//
// Unpack may block the (virtual) host: it returns both the tensor and the
// time at which its data is actually resident, which becomes a lower
// bound for the consuming backward kernel's start.
type Hooks interface {
	// Phase delivers a scheduler hint with the micro-batch index and the
	// current host virtual time.
	Phase(ev PhaseEvent, microBatch int, hostNow time.Duration)

	// ForwardPre fires when the host enters a module's forward.
	ForwardPre(m *Module, hostNow time.Duration)
	// ForwardPost fires when the host exits a module's forward.
	ForwardPost(m *Module, hostNow time.Duration)
	// BackwardPre fires when the host enters a module's backward; this is
	// where the cache issues prefetches for upcoming modules.
	BackwardPre(m *Module, hostNow time.Duration)
	// BackwardPost fires when the host exits a module's backward.
	BackwardPost(m *Module, hostNow time.Duration)

	// Pack is called when a tensor is registered on the computation graph.
	// producedAt is when the producing kernel finishes — data transfers of
	// the tensor must not begin before it. Pack returns what to store on
	// the graph.
	Pack(t *tensor.Tensor, producedAt, hostNow time.Duration) Packed
	// Unpack resolves a graph entry back to a tensor; the returned time is
	// when the tensor's data is resident on the GPU (≥ hostNow when a
	// reload is in flight).
	Unpack(p Packed, hostNow time.Duration) (*tensor.Tensor, time.Duration)
	// Consumed tells the hook the backward consumer of p finished at the
	// given time, releasing the hook's reference for reloaded or kept
	// tensors.
	Consumed(p Packed, at time.Duration)

	// HostCost is the host CPU time charged per hook invocation; the
	// paper's claim that the cache logic stays off the critical path is
	// checked by sweeping this.
	HostCost() time.Duration
}

// NoHooks is the baseline with no cache installed: every pack returns the
// raw tensor, which the executor then keeps resident until backward — the
// paper's "No Offloading" configuration.
type NoHooks struct{}

// Phase implements Hooks.
func (NoHooks) Phase(PhaseEvent, int, time.Duration) {}

// ForwardPre implements Hooks.
func (NoHooks) ForwardPre(*Module, time.Duration) {}

// ForwardPost implements Hooks.
func (NoHooks) ForwardPost(*Module, time.Duration) {}

// BackwardPre implements Hooks.
func (NoHooks) BackwardPre(*Module, time.Duration) {}

// BackwardPost implements Hooks.
func (NoHooks) BackwardPost(*Module, time.Duration) {}

// Pack implements Hooks: the tensor itself is stored on the graph.
func (NoHooks) Pack(t *tensor.Tensor, _, _ time.Duration) Packed { return t }

// Unpack implements Hooks: raw tensors are already resident.
func (NoHooks) Unpack(p Packed, hostNow time.Duration) (*tensor.Tensor, time.Duration) {
	return p.(*tensor.Tensor), hostNow
}

// Consumed implements Hooks.
func (NoHooks) Consumed(Packed, time.Duration) {}

// HostCost implements Hooks.
func (NoHooks) HostCost() time.Duration { return 0 }

var _ Hooks = NoHooks{}
