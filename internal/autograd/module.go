// Package autograd rebuilds the PyTorch execution surface that SSDTrain
// (the paper's §III-B) is implemented against: a module tree, forward and
// backward module hooks, saved-tensor pack/unpack hooks, and an executor
// that runs a training step on the simulated GPU in virtual time. The
// tensor cache in internal/core plugs into this package exactly the way
// the paper's cache plugs into PyTorch — via hooks only, with no changes
// to the runtime itself (the interoperability property of Table I).
package autograd

import "fmt"

// Module is a node in the model tree. Concrete layers embed or reference
// one; the hook machinery cares only about identity and names.
type Module struct {
	name     string
	parent   *Module
	children []*Module
}

// NewModule creates a root module.
func NewModule(name string) *Module {
	return &Module{name: name}
}

// Child creates (and registers) a child module.
func (m *Module) Child(name string) *Module {
	c := &Module{name: name, parent: m}
	m.children = append(m.children, c)
	return c
}

// Name returns the module's local name.
func (m *Module) Name() string { return m.name }

// Path returns the dotted path from the root, e.g. "gpt.layers.3.mlp".
func (m *Module) Path() string {
	if m.parent == nil {
		return m.name
	}
	return m.parent.Path() + "." + m.name
}

// Children returns the registered child modules.
func (m *Module) Children() []*Module { return m.children }

// String renders the module path.
func (m *Module) String() string { return fmt.Sprintf("module(%s)", m.Path()) }
