package autograd

import (
	"time"

	"ssdtrain/internal/tensor"
)

// OptimPipeline is an offloaded optimizer the executor drives instead of
// the on-GPU update loop (the ZeRO-Offload / GreedySnake regime). The
// executor announces each weight's gradient the moment backward finishes
// producing it, so the pipeline's downloads and host-side updates overlap
// the remaining backward; the pipeline answers when each updated weight
// is back on the GPU, which is the ordering constraint the next step's
// forward must respect.
//
// Under the sync schedule the executor ends the step at Drain(); under
// the overlap schedule the step ends at the compute horizon and the
// pipeline keeps draining into fwd(t+1), where forwardBlock stalls any
// kernel whose weight has not arrived ("optim-wait").
type OptimPipeline interface {
	// GradReady announces that w's gradient for this step is complete at
	// the given virtual time; the pipeline dispatches the weight's
	// download → update → upload chain from there.
	GradReady(w *tensor.Tensor, ready time.Duration)
	// WeightReady returns when w's updated value is back on the GPU (zero
	// when no chain was dispatched for it).
	WeightReady(w *tensor.Tensor) time.Duration
	// Drain returns when every dispatched chain completes.
	Drain() time.Duration
	// StepEnd tells the pipeline where the executor ended the step, so it
	// can attribute work draining past the boundary.
	StepEnd(end time.Duration)
}

// ConfigureOptim installs (or, with nil, removes) an offloaded-optimizer
// pipeline for subsequent Runs. overlap selects the GreedySnake schedule:
// the step ends at the compute horizon and the pipeline drains into the
// next step's forward; sync (false) holds the step open until Drain().
// Cheap per-run state — call alongside Reset when reusing the executor.
func (e *Executor) ConfigureOptim(p OptimPipeline, overlap bool) {
	e.optim = p
	e.optimOverlap = overlap
}
