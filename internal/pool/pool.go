// Package pool provides the deterministic worker pool shared by the
// sweep layers (exp.Sweep, fleet's profiling and scenario sweeps). Work
// items are independent and deterministic, so the worker count never
// changes results — only wall-clock time.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelMap applies fn to every element of in using at most workers
// goroutines and returns the results in input order. A zero or negative
// worker count uses GOMAXPROCS. If any call fails, the error of the
// lowest-indexed failing item is returned (independent of worker count)
// and the partial results are discarded.
func ParallelMap[T, R any](workers int, in []T, fn func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	errs := make([]error, len(in))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(in) {
					return
				}
				out[i], errs[i] = fn(in[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
