package tensor

import (
	"testing"
	"testing/quick"

	"ssdtrain/internal/units"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{FP16: 2, BF16: 2, FP32: 4, INT32: 4, INT64: 8, BOOL: 1}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), want)
		}
	}
	if FP16.String() != "fp16" || BOOL.String() != "bool" {
		t.Errorf("dtype names wrong")
	}
}

func TestShapeBasics(t *testing.T) {
	s := NewShape(2, 3, 4)
	if s.NumElems() != 24 || s.Rank() != 3 {
		t.Errorf("elems=%d rank=%d", s.NumElems(), s.Rank())
	}
	if !s.Equal(NewShape(2, 3, 4)) || s.Equal(NewShape(2, 3)) {
		t.Error("Equal broken")
	}
	tr := s.Transposed()
	if !tr.Equal(NewShape(2, 4, 3)) {
		t.Errorf("transposed = %v", tr)
	}
	if s.String() != "[2 3 4]" {
		t.Errorf("string = %q", s.String())
	}
	// Clone independence.
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("clone aliases original")
	}
}

func TestShapeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive dim did not panic")
		}
	}()
	NewShape(2, 0)
}

func TestTensorBytes(t *testing.T) {
	x := New("x", NewShape(16, 1024), FP16, GPU)
	if x.Bytes() != units.Bytes(16*1024*2) {
		t.Errorf("bytes = %v", x.Bytes())
	}
	if x.Device() != GPU || x.IsCPU() {
		t.Error("device wrong")
	}
	if x.IsWeight() {
		t.Error("plain tensor marked weight")
	}
	w := NewWeight("w", NewShape(4, 4), FP16, GPU)
	if !w.IsWeight() {
		t.Error("weight not marked")
	}
}

func TestViewsShareStorage(t *testing.T) {
	x := New("x", NewShape(4, 8), FP16, GPU)
	v := x.View("v", NewShape(8, 4))
	if v.Storage() != x.Storage() {
		t.Error("view does not share storage")
	}
	tr := x.Transpose()
	if tr.Storage() != x.Storage() {
		t.Error("transpose does not share storage")
	}
	if !tr.Shape().Equal(NewShape(8, 4)) {
		t.Errorf("transpose shape = %v", tr.Shape())
	}
	// Weight flag propagates through views.
	w := NewWeight("w", NewShape(4, 8), FP16, GPU)
	if !w.Transpose().IsWeight() {
		t.Error("transposed weight lost its flag")
	}
}

func TestViewElemMismatchPanics(t *testing.T) {
	x := New("x", NewShape(4, 8), FP16, GPU)
	defer func() {
		if recover() == nil {
			t.Error("bad view did not panic")
		}
	}()
	x.View("bad", NewShape(3, 3))
}

func TestStorageRefcount(t *testing.T) {
	s := NewStorage(128, GPU)
	s.Retain()
	s.Retain()
	if s.Release() {
		t.Error("freed too early")
	}
	if !s.Release() {
		t.Error("not freed at zero")
	}
	if !s.Freed() {
		t.Error("Freed() false after free")
	}
	// Double release panics.
	defer func() {
		if recover() == nil {
			t.Error("release after free did not panic")
		}
	}()
	s.Release()
}

func TestStorageStamp(t *testing.T) {
	s := NewStorage(64, GPU)
	if s.Stamp() != 0 {
		t.Error("fresh storage has a stamp")
	}
	s.SetStamp(42)
	s.SetStamp(42) // idempotent
	if s.Stamp() != 42 {
		t.Errorf("stamp = %d", s.Stamp())
	}
	defer func() {
		if recover() == nil {
			t.Error("re-stamping did not panic")
		}
	}()
	s.SetStamp(43)
}

func TestMaterializeDeterministic(t *testing.T) {
	a := NewStorage(1024, GPU)
	b := NewStorage(1024, GPU)
	a.Materialize(7)
	b.Materialize(7)
	if a.Checksum() == 0 {
		t.Error("zero checksum")
	}
	if a.Checksum() != b.Checksum() {
		t.Error("same seed produced different payloads")
	}
	c := NewStorage(1024, GPU)
	c.Materialize(8)
	if c.Checksum() == a.Checksum() {
		t.Error("different seeds produced identical payloads")
	}
	// Idempotent.
	sum := a.Checksum()
	a.Materialize(99)
	if a.Checksum() != sum {
		t.Error("re-materialize overwrote payload")
	}
}

func TestSetDataSizeMismatchPanics(t *testing.T) {
	s := NewStorage(16, GPU)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	s.SetData(make([]byte, 8))
}

func TestWeakRef(t *testing.T) {
	x := New("x", NewShape(2, 2), FP16, GPU)
	x.Storage().Retain()
	w := Weak(x)
	if w.Get() != x {
		t.Error("weak ref lost live tensor")
	}
	x.Storage().Release()
	if w.Get() != nil {
		t.Error("weak ref survives free")
	}
}

// Property: NumElems is the product of dimensions; Bytes scales with
// dtype size.
func TestShapeElemsProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d0, d1, d2 := int(a%7)+1, int(b%7)+1, int(c%7)+1
		s := NewShape(d0, d1, d2)
		if s.NumElems() != int64(d0*d1*d2) {
			return false
		}
		x := New("t", s, FP32, GPU)
		return x.Bytes() == units.Bytes(4*d0*d1*d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution on shapes.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := NewShape(int(a%9)+1, int(b%9)+1, int(c%9)+1)
		return s.Transposed().Transposed().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
