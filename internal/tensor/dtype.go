// Package tensor provides the tensor abstraction the SSDTrain cache
// manages: shaped, typed views over reference-counted storages. It mirrors
// the PyTorch split between Tensor (shape + view metadata) and
// UntypedStorage (the actual allocation), because the paper's
// deduplication scheme (§III-C1) depends on that split: identifiers are
// stamped onto the storage so that every view of the same allocation —
// including the transposed weight views linear layers save for backward —
// resolves to one stable identifier across training steps.
package tensor

import "fmt"

// DType is a tensor element type.
type DType uint8

// Supported element types.
const (
	FP16 DType = iota
	BF16
	FP32
	INT32
	INT64
	BOOL
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case FP16, BF16:
		return 2
	case FP32, INT32:
		return 4
	case INT64:
		return 8
	case BOOL:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", d))
	}
}

// String returns the conventional dtype name.
func (d DType) String() string {
	switch d {
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case FP32:
		return "fp32"
	case INT32:
		return "int32"
	case INT64:
		return "int64"
	case BOOL:
		return "bool"
	default:
		return fmt.Sprintf("dtype(%d)", d)
	}
}
