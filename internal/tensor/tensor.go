package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"ssdtrain/internal/units"
)

// Device identifies where a storage lives.
type Device uint8

// Device kinds.
const (
	// GPU is device memory; the default home of activations.
	GPU Device = iota
	// CPU is host memory; CPU-resident tensors are never offloaded
	// (Alg. 1 line 2).
	CPU
)

// String names the device.
func (d Device) String() string {
	if d == CPU {
		return "cpu"
	}
	return "gpu"
}

var storageSeq atomic.Int64

// Storage is the allocation backing one or more tensor views — the
// analogue of PyTorch's UntypedStorage. The SSDTrain cache stamps its
// deduplication timestamp here rather than on the Tensor, because PyTorch
// (and this runtime) may create fresh Tensor objects viewing the same
// allocation, and all of them must map to one offload record.
type Storage struct {
	// seq is a process-unique allocation number, used only for diagnostics;
	// it is deliberately NOT the cache identifier (the paper explains that
	// address/object-identity based IDs collide once memory is recycled).
	seq    int64
	bytes  units.Bytes
	device Device

	// stamp is the cache-assigned logical timestamp (0 = unassigned). It is
	// the paper's "additional attribute added to t.untyped_storage()".
	stamp int64

	// data is the optional real payload. Experiments that only need timing
	// leave it nil; I/O-correctness tests materialize it.
	data []byte

	// freed marks the storage as released; weak references observe this.
	freed bool

	// strong is the number of strong references held by the runtime and
	// the cache. The executor frees the storage when it reaches zero.
	strong int
}

// initStorage is the single construction path for storage metadata; both
// NewStorage and the combined tensor+storage allocation in New go
// through it so their invariants cannot diverge.
func initStorage(s *Storage, n units.Bytes, dev Device) {
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative storage size %d", n))
	}
	*s = Storage{seq: storageSeq.Add(1), bytes: n, device: dev}
}

// NewStorage allocates storage metadata of the given byte size on the
// device. The payload is not materialized.
func NewStorage(n units.Bytes, dev Device) *Storage {
	s := &Storage{}
	initStorage(s, n, dev)
	return s
}

// Seq returns the diagnostic allocation number.
func (s *Storage) Seq() int64 { return s.seq }

// Bytes returns the storage size.
func (s *Storage) Bytes() units.Bytes { return s.bytes }

// Device returns where the storage lives.
func (s *Storage) Device() Device { return s.device }

// Stamp returns the cache-assigned timestamp (0 if unassigned).
func (s *Storage) Stamp() int64 { return s.stamp }

// SetStamp assigns the cache timestamp. Assigning twice with different
// values panics: a storage's identity must never change.
func (s *Storage) SetStamp(v int64) {
	if v <= 0 {
		panic("tensor: stamp must be positive")
	}
	if s.stamp != 0 && s.stamp != v {
		panic(fmt.Sprintf("tensor: storage %d re-stamped %d -> %d", s.seq, s.stamp, v))
	}
	s.stamp = v
}

// Freed reports whether the storage has been released.
func (s *Storage) Freed() bool { return s.freed }

// ResetForReuse returns the storage to its just-constructed state —
// unstamped, unreferenced, unmaterialized — while keeping its size,
// device and allocation number. This is the in-place alternative to
// rebinding views onto a brand-new storage: a recycled execution arena
// "re-zeroes" its weight and activation storages between runs, and the
// cache's ID source then restamps them exactly as it would stamp fresh
// allocations. The caller owns the invariant that nothing live still
// references the storage.
func (s *Storage) ResetForReuse() {
	s.stamp = 0
	s.strong = 0
	s.freed = false
	s.data = nil
}

// Retain adds a strong reference.
func (s *Storage) Retain() {
	if s.freed {
		panic(fmt.Sprintf("tensor: retain of freed storage %d", s.seq))
	}
	s.strong++
}

// Release drops a strong reference and reports whether the storage became
// free (refcount hit zero). The caller owns the consequence (returning the
// bytes to the allocator at the right virtual time).
func (s *Storage) Release() bool {
	if s.freed {
		panic(fmt.Sprintf("tensor: release of freed storage %d", s.seq))
	}
	if s.strong <= 0 {
		panic(fmt.Sprintf("tensor: refcount underflow on storage %d", s.seq))
	}
	s.strong--
	if s.strong == 0 {
		s.freed = true
		s.data = nil
		return true
	}
	return false
}

// Refs returns the current strong reference count.
func (s *Storage) Refs() int { return s.strong }

// Materialize fills the payload deterministically from the seed. It is
// idempotent for a given seed and enables byte-exact offload round-trip
// verification.
func (s *Storage) Materialize(seed uint64) {
	if s.freed {
		panic(fmt.Sprintf("tensor: materialize of freed storage %d", s.seq))
	}
	if s.data != nil {
		return
	}
	s.data = make([]byte, s.bytes)
	fillDeterministic(s.data, seed)
}

// Data returns the payload (nil if never materialized).
func (s *Storage) Data() []byte { return s.data }

// SetData installs a payload buffer, used when reloading from the offload
// target. The buffer length must match the storage size.
func (s *Storage) SetData(b []byte) {
	if units.Bytes(len(b)) != s.bytes {
		panic(fmt.Sprintf("tensor: payload size %d != storage size %d", len(b), s.bytes))
	}
	s.data = b
}

// Checksum returns a CRC32 over the payload, or 0 when not materialized.
func (s *Storage) Checksum() uint32 {
	if s.data == nil {
		return 0
	}
	return crc32.ChecksumIEEE(s.data)
}

// fillDeterministic writes a fast xorshift64* stream derived from seed.
func fillDeterministic(b []byte, seed uint64) {
	x := seed | 1
	var word [8]byte
	for i := 0; i < len(b); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(word[:], x*0x2545F4914F6CDD1D)
		copy(b[i:], word[:])
	}
}

// Tensor is a shaped, typed view of a storage — the object the model
// runtime passes around and the cache's pack hook inspects.
type Tensor struct {
	name    string
	shape   Shape
	dtype   DType
	storage *Storage
	// weight marks parameters (and their transposed views); the cache
	// excludes them from offloading (§III-C1).
	weight bool
}

// New allocates a fresh tensor with its own storage on the device. The
// tensor and its storage come from one combined allocation — the executor
// creates one per op per step, so halving the object count matters on the
// simulation hot path.
func New(name string, shape Shape, dt DType, dev Device) *Tensor {
	n := units.Bytes(shape.NumElems() * int64(dt.Size()))
	box := &struct {
		t Tensor
		s Storage
	}{}
	initStorage(&box.s, n, dev)
	box.t = Tensor{name: name, shape: shape, dtype: dt, storage: &box.s}
	return &box.t
}

// NewWeight allocates a parameter tensor (flagged as a weight).
func NewWeight(name string, shape Shape, dt DType, dev Device) *Tensor {
	t := New(name, shape, dt, dev)
	t.weight = true
	return t
}

// WithStorage returns a copy of the tensor view bound to a different
// storage of the same size — the mechanism graph instantiation uses to
// rebind weight views (including transposed tied views) onto fresh
// storages while preserving which views share an allocation.
func (t *Tensor) WithStorage(s *Storage) *Tensor {
	if s.bytes != t.storage.bytes {
		panic(fmt.Sprintf("tensor: rebind of %s onto storage of %d bytes (have %d)",
			t.name, s.bytes, t.storage.bytes))
	}
	return &Tensor{name: t.name, shape: t.shape, dtype: t.dtype, storage: s, weight: t.weight}
}

// View returns a new tensor sharing this tensor's storage with a different
// shape. The element count must match.
func (t *Tensor) View(name string, shape Shape) *Tensor {
	if shape.NumElems() != t.shape.NumElems() {
		panic(fmt.Sprintf("tensor: view %v of %v changes element count", shape, t.shape))
	}
	return &Tensor{name: name, shape: shape, dtype: t.dtype, storage: t.storage, weight: t.weight}
}

// Transpose returns the transposed view sharing storage — the view linear
// layers register on the computation graph for backward (§III-C1).
func (t *Tensor) Transpose() *Tensor {
	return &Tensor{
		name:    t.name + ".T",
		shape:   t.shape.Transposed(),
		dtype:   t.dtype,
		storage: t.storage,
		weight:  t.weight,
	}
}

// Name returns the tensor's diagnostic name.
func (t *Tensor) Name() string { return t.name }

// Shape returns the tensor's shape.
func (t *Tensor) Shape() Shape { return t.shape }

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Storage returns the backing storage.
func (t *Tensor) Storage() *Storage { return t.storage }

// Device returns where the tensor lives.
func (t *Tensor) Device() Device { return t.storage.device }

// Bytes returns the view's logical size (elements × element size).
func (t *Tensor) Bytes() units.Bytes {
	return units.Bytes(t.shape.NumElems() * int64(t.dtype.Size()))
}

// NumElems returns the number of elements in the view.
func (t *Tensor) NumElems() int64 { return t.shape.NumElems() }

// IsWeight reports whether the tensor is a parameter or a parameter view.
func (t *Tensor) IsWeight() bool { return t.weight }

// IsCPU reports whether the tensor lives in host memory.
func (t *Tensor) IsCPU() bool { return t.storage.device == CPU }

// String renders a diagnostic description.
func (t *Tensor) String() string {
	return fmt.Sprintf("%s%v:%s@%s", t.name, t.shape, t.dtype, t.Device())
}

// WeakRef is a non-owning reference to a tensor, the mechanism behind the
// paper's data forwarding: while a tensor is being stored the cache keeps
// only a weak reference, and an unpack that arrives before the store
// completes upgrades it to a strong reference instead of reading the SSD.
type WeakRef struct {
	t *Tensor
}

// Weak creates a weak reference to t.
func Weak(t *Tensor) WeakRef { return WeakRef{t: t} }

// Get returns the tensor if its storage is still live, or nil if it has
// been freed.
func (w WeakRef) Get() *Tensor {
	if w.t == nil || w.t.storage.freed {
		return nil
	}
	return w.t
}
