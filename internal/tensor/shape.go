package tensor

import (
	"fmt"
	"strings"
)

// Shape is a tensor's dimension list. Shapes are immutable by convention:
// operations return new shapes.
type Shape []int

// NewShape validates and returns a shape. All dimensions must be positive.
func NewShape(dims ...int) Shape {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, dims))
		}
	}
	return Shape(dims)
}

// NumElems returns the product of the dimensions (1 for a scalar shape).
func (s Shape) NumElems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Transposed returns the shape with the last two dimensions swapped, the
// view linear layers save for backward propagation.
func (s Shape) Transposed() Shape {
	if len(s) < 2 {
		return s.Clone()
	}
	t := s.Clone()
	n := len(t)
	t[n-1], t[n-2] = t[n-2], t[n-1]
	return t
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as [d0 d1 ...].
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Key returns a canonical string for use in composite identifiers; it is
// part of the paper's (timestamp, shape) tensor ID.
func (s Shape) Key() string { return s.String() }

// Hash returns an allocation-free FNV-1a digest of the dimension list,
// used where a shape must discriminate composite identifiers without
// paying for string construction on the simulation hot path. Shapes with
// equal dimension lists hash identically; distinct lists collide only
// with cryptographically negligible probability.
func (s Shape) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, d := range s {
		v := uint64(d)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}
