package sched

import (
	"testing"
	"time"
)

func TestStageOrderLastStageIs1F1B(t *testing.T) {
	// The last stage alternates from the start — the paper's Fig 2
	// "1F 1B 2F 2B" pattern for a 2-micro-batch step.
	ops := StageOrder(OneFOneB, 2, 3, 2)
	if got := OrderString(ops); got != "1F 1B 2F 2B" {
		t.Errorf("last stage order = %q", got)
	}
	// The first stage warms up with p-1 forwards.
	ops = StageOrder(OneFOneB, 0, 3, 4)
	if got := OrderString(ops); got != "1F 2F 3F 1B 4F 2B 3B 4B" {
		t.Errorf("first stage order = %q", got)
	}
}

func TestStageOrderGPipe(t *testing.T) {
	ops := StageOrder(GPipe, 0, 2, 3)
	if got := OrderString(ops); got != "1F 2F 3F 3B 2B 1B" {
		t.Errorf("gpipe order = %q", got)
	}
}

func TestStageOrderCompleteness(t *testing.T) {
	for _, kind := range []Kind{GPipe, OneFOneB} {
		for p := 1; p <= 4; p++ {
			for s := 0; s < p; s++ {
				for m := 1; m <= 6; m++ {
					ops := StageOrder(kind, s, p, m)
					if len(ops) != 2*m {
						t.Fatalf("%v stage %d/%d m=%d: %d ops", kind, s, p, m, len(ops))
					}
					// Every micro-batch appears exactly once per kind, and
					// B(i) never precedes F(i).
					fSeen := make(map[int]int)
					for i, op := range ops {
						if op.Kind == Forward {
							fSeen[op.MB] = i
						} else if fi, ok := fSeen[op.MB]; !ok || fi > i {
							t.Fatalf("%v: backward before forward: %s", kind, OrderString(ops))
						}
					}
				}
			}
		}
	}
}

func TestRunTimelineDependencies(t *testing.T) {
	c := Costs{FwdPerMB: 10 * time.Millisecond, BwdPerMB: 20 * time.Millisecond,
		Comm: time.Millisecond, Update: 5 * time.Millisecond}
	res := Run(OneFOneB, 4, 8, c)
	fEnd := make(map[[2]int]time.Duration)
	bEnd := make(map[[2]int]time.Duration)
	for _, sl := range res.Slots {
		key := [2]int{sl.Stage, sl.Op.MB}
		if sl.Op.Kind == Forward {
			fEnd[key] = sl.End
		} else {
			bEnd[key] = sl.End
		}
	}
	for _, sl := range res.Slots {
		if sl.Op.Kind == Forward && sl.Stage > 0 {
			dep := fEnd[[2]int{sl.Stage - 1, sl.Op.MB}]
			if sl.Start < dep+c.Comm {
				t.Fatalf("F(%d,%d) started before upstream finished", sl.Stage, sl.Op.MB)
			}
		}
		if sl.Op.Kind == Backward && sl.Stage < res.Stages-1 {
			dep := bEnd[[2]int{sl.Stage + 1, sl.Op.MB}]
			if sl.Start < dep+c.Comm {
				t.Fatalf("B(%d,%d) started before downstream finished", sl.Stage, sl.Op.MB)
			}
		}
	}
}

func TestBubbleMatchesIdealFormula(t *testing.T) {
	// With f == b and no comm, the 1F1B bubble fraction approaches
	// (p-1)/(m+p-1).
	p, m := 4, 12
	c := Costs{FwdPerMB: 10 * time.Millisecond, BwdPerMB: 10 * time.Millisecond}
	res := Run(OneFOneB, p, m, c)
	ideal := float64(p-1) / float64(m+p-1)
	if diff := res.BubbleFraction - ideal; diff < -0.02 || diff > 0.02 {
		t.Errorf("bubble %.3f vs ideal %.3f", res.BubbleFraction, ideal)
	}
}

func TestMoreMicroBatchesShrinkBubble(t *testing.T) {
	c := Costs{FwdPerMB: 10 * time.Millisecond, BwdPerMB: 20 * time.Millisecond}
	b4 := Run(OneFOneB, 4, 4, c).BubbleFraction
	b16 := Run(OneFOneB, 4, 16, c).BubbleFraction
	if b16 >= b4 {
		t.Errorf("bubble did not shrink: m=4 %.3f, m=16 %.3f", b4, b16)
	}
}

func TestPeakInFlightBounded(t *testing.T) {
	c := Costs{FwdPerMB: 10 * time.Millisecond, BwdPerMB: 20 * time.Millisecond}
	res := Run(OneFOneB, 4, 16, c)
	// 1F1B bounds stage s to at most p-s in-flight micro-batches.
	for s := 0; s < res.Stages; s++ {
		if res.PeakInFlight[s] > res.Stages-s {
			t.Errorf("stage %d in-flight %d exceeds 1F1B bound %d", s, res.PeakInFlight[s], res.Stages-s)
		}
	}
	// GPipe holds everything.
	gp := Run(GPipe, 4, 16, c)
	if gp.PeakInFlight[0] != 16 {
		t.Errorf("gpipe stage0 in-flight = %d, want all 16", gp.PeakInFlight[0])
	}
}

func TestOneStagePipeline(t *testing.T) {
	c := Costs{FwdPerMB: 10 * time.Millisecond, BwdPerMB: 20 * time.Millisecond, Update: 5 * time.Millisecond}
	res := Run(OneFOneB, 1, 3, c)
	want := 3*(10+20)*time.Millisecond + 5*time.Millisecond
	if res.StepTime != want {
		t.Errorf("step = %v, want %v", res.StepTime, want)
	}
	if res.BubbleFraction > 0.001 {
		t.Errorf("single stage has bubble %.3f", res.BubbleFraction)
	}
}
