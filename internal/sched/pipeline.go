// Package sched models the training-step drivers SSDTrain integrates
// with: gradient accumulation and the pipeline-parallel schedules
// (GPipe's all-forward-all-backward and Megatron/DeepSpeed's 1F1B). The
// schedule generator produces the per-stage op order — the "1B2B2F1F"
// stream of Fig 2 — and an event-accurate timing pass computes stage
// timelines, bubble fractions, and per-stage activation residency, which
// is what SSDTrain's memory savings converts into larger micro-batches
// and smaller bubbles (§IV-D).
package sched

import (
	"fmt"
	"strings"
	"time"
)

// OpKind is a schedule entry type.
type OpKind uint8

// Schedule op kinds.
const (
	Forward OpKind = iota
	Backward
)

// String renders the kind as the paper's F/B notation.
func (k OpKind) String() string {
	if k == Backward {
		return "B"
	}
	return "F"
}

// Op is one schedule entry: run micro-batch MB's forward or backward on a
// stage.
type Op struct {
	Kind OpKind
	MB   int
}

// String renders "2F" style notation (micro-batch is 1-based, as in the
// paper's Fig 2).
func (o Op) String() string { return fmt.Sprintf("%d%s", o.MB+1, o.Kind) }

// Kind selects a pipeline schedule.
type Kind uint8

// Schedules.
const (
	// GPipe runs all forwards then all backwards per stage.
	GPipe Kind = iota
	// OneFOneB is the Megatron/DeepSpeed 1F1B schedule: a warmup of
	// forwards, then alternating backward/forward, then a cooldown of
	// backwards. It bounds in-flight micro-batches per stage.
	OneFOneB
)

// String names the schedule.
func (k Kind) String() string {
	if k == OneFOneB {
		return "1F1B"
	}
	return "GPipe"
}

// StageOrder generates the op order for one stage (0-based, of p stages)
// over m micro-batches.
func StageOrder(kind Kind, stage, p, m int) []Op {
	if stage < 0 || stage >= p || m <= 0 {
		panic(fmt.Sprintf("sched: bad stage order request stage=%d p=%d m=%d", stage, p, m))
	}
	var ops []Op
	switch kind {
	case GPipe:
		for i := 0; i < m; i++ {
			ops = append(ops, Op{Forward, i})
		}
		for i := m - 1; i >= 0; i-- {
			ops = append(ops, Op{Backward, i})
		}
	case OneFOneB:
		warm := p - stage - 1
		if warm > m {
			warm = m
		}
		f, b := 0, 0
		for i := 0; i < warm; i++ {
			ops = append(ops, Op{Forward, f})
			f++
		}
		for b < m {
			if f < m {
				ops = append(ops, Op{Forward, f})
				f++
			}
			ops = append(ops, Op{Backward, b})
			b++
		}
	default:
		panic(fmt.Sprintf("sched: unknown schedule kind %d", kind))
	}
	return ops
}

// OrderString renders a stage's order compactly ("1F 2F 1B 2B").
func OrderString(ops []Op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// Costs parameterizes the timing pass.
type Costs struct {
	// FwdPerMB/BwdPerMB are one micro-batch's compute times on one stage.
	FwdPerMB time.Duration
	BwdPerMB time.Duration
	// Comm is the stage-to-stage activation/gradient transfer time.
	Comm time.Duration
	// Update is the per-stage optimizer time after the last backward.
	Update time.Duration
}

// Slot is one executed schedule entry with its computed times.
type Slot struct {
	Stage int
	Op    Op
	Start time.Duration
	End   time.Duration
}

// Result is a computed pipeline timeline.
type Result struct {
	Kind     Kind
	Stages   int
	MBs      int
	Slots    []Slot
	StepTime time.Duration
	// BubbleTime is total idle time across stages between each stage's
	// first start and last end.
	BubbleTime time.Duration
	// BubbleFraction is bubble time over total stage-time.
	BubbleFraction float64
	// PeakInFlight is the maximum number of micro-batches whose forward
	// ran but whose backward has not finished, per stage — the activation
	// residency multiplier for PP memory planning (§IV-D).
	PeakInFlight []int
}

// Run computes the timeline of a schedule over p stages and m
// micro-batches with the given costs, honoring both intra-stage order and
// cross-stage dependencies (F needs the previous stage's F of the same
// micro-batch; B needs the next stage's B).
func Run(kind Kind, p, m int, c Costs) *Result {
	orders := make([][]Op, p)
	for s := 0; s < p; s++ {
		orders[s] = StageOrder(kind, s, p, m)
	}
	fDone := make([][]time.Duration, p) // fDone[s][mb]
	bDone := make([][]time.Duration, p)
	for s := 0; s < p; s++ {
		fDone[s] = make([]time.Duration, m)
		bDone[s] = make([]time.Duration, m)
		for i := 0; i < m; i++ {
			fDone[s][i] = -1
			bDone[s][i] = -1
		}
	}
	idx := make([]int, p)            // next op per stage
	free := make([]time.Duration, p) // stage ready time
	res := &Result{Kind: kind, Stages: p, MBs: m, PeakInFlight: make([]int, p)}
	inFlight := make([]int, p)

	remaining := 0
	for s := 0; s < p; s++ {
		remaining += len(orders[s])
	}
	for remaining > 0 {
		progressed := false
		for s := 0; s < p; s++ {
			if idx[s] >= len(orders[s]) {
				continue
			}
			op := orders[s][idx[s]]
			var dep time.Duration
			ok := true
			switch op.Kind {
			case Forward:
				if s > 0 {
					if fDone[s-1][op.MB] < 0 {
						ok = false
					} else {
						dep = fDone[s-1][op.MB] + c.Comm
					}
				}
			case Backward:
				if s < p-1 {
					if bDone[s+1][op.MB] < 0 {
						ok = false
					} else {
						dep = bDone[s+1][op.MB] + c.Comm
					}
				} else if fDone[s][op.MB] < 0 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			start := free[s]
			if dep > start {
				start = dep
			}
			dur := c.FwdPerMB
			if op.Kind == Backward {
				dur = c.BwdPerMB
			}
			end := start + dur
			free[s] = end
			if op.Kind == Forward {
				fDone[s][op.MB] = end
				inFlight[s]++
				if inFlight[s] > res.PeakInFlight[s] {
					res.PeakInFlight[s] = inFlight[s]
				}
			} else {
				bDone[s][op.MB] = end
				inFlight[s]--
			}
			res.Slots = append(res.Slots, Slot{Stage: s, Op: op, Start: start, End: end})
			idx[s]++
			remaining--
			progressed = true
		}
		if !progressed {
			panic("sched: pipeline schedule deadlocked")
		}
	}

	var firstStart, lastEnd time.Duration
	var busy time.Duration
	for s := 0; s < p; s++ {
		free[s] += c.Update
	}
	for _, sl := range res.Slots {
		busy += sl.End - sl.Start
		if sl.End > lastEnd {
			lastEnd = sl.End
		}
	}
	_ = firstStart
	res.StepTime = lastEnd + c.Update
	span := time.Duration(p) * res.StepTime
	res.BubbleTime = span - busy - time.Duration(p)*c.Update
	if span > 0 {
		res.BubbleFraction = float64(res.BubbleTime) / float64(span)
	}
	return res
}
