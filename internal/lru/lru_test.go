package lru

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheEvictionOrder(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 missing")
	}
	c.Put(3, "c") // evicts 2 (least recently used)
	if _, ok := c.GetQuiet(2); ok {
		t.Fatal("2 not evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatal("1 lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 0 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := New[string, int](4)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int, int](0)
}

func TestSingleflightCoalesces(t *testing.T) {
	var sf Singleflight[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := sf.Do("key", func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("v=%d err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let all goroutines pile onto the flight, then release it. A short
	// busy wait keeps the test deterministic enough without sleeps in the
	// success path.
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times", calls.Load())
	}
	if sharedCount.Load() != 15 {
		t.Fatalf("shared = %d, want 15", sharedCount.Load())
	}
}

func TestSingleflightSurvivesPanic(t *testing.T) {
	var sf Singleflight[int, int]
	func() {
		defer func() { recover() }()
		sf.Do(1, func() (int, error) { panic("boom") })
	}()
	// The flight must have landed: a later caller runs fresh instead of
	// blocking on a channel nobody closes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err, _ := sf.Do(1, func() (int, error) { return 9, nil }); err != nil || v != 9 {
			t.Errorf("post-panic call: v=%d err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("caller after a panicked flight blocked forever")
	}
}

func TestSingleflightWaitersRepanic(t *testing.T) {
	var sf Singleflight[int, int]
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // flight owner: panics mid-flight
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("owner did not re-panic")
			}
		}()
		sf.Do(1, func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()

	<-started
	waiterDone := make(chan any, 1)
	wg.Add(1)
	go func() { // waiter: must observe the panic, not a zero value
		defer wg.Done()
		defer func() { waiterDone <- recover() }()
		sf.Do(1, func() (int, error) { return 0, nil })
	}()
	// Give the waiter a moment to join the flight, then detonate.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if r := <-waiterDone; r == nil {
		t.Fatal("waiter returned normally from a panicked flight")
	}
}

func TestSingleflightPropagatesError(t *testing.T) {
	var sf Singleflight[int, int]
	wantErr := errors.New("boom")
	_, err, _ := sf.Do(1, func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// The key is forgotten after the flight: a second call runs again.
	v, err, _ := sf.Do(1, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("second call: v=%d err=%v", v, err)
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	if n := c.Evictions(); n != 0 {
		t.Fatalf("evictions before overflow = %d", n)
	}
	c.Put(1, 10) // refresh, not an insert: must not evict
	if n := c.Evictions(); n != 0 {
		t.Fatalf("evictions after refresh = %d", n)
	}
	c.Put(3, 3)
	c.Put(4, 4)
	if n := c.Evictions(); n != 2 {
		t.Fatalf("evictions = %d, want 2", n)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
}

func TestStampsCarryAndRefresh(t *testing.T) {
	c := New[string, int](4)
	old := time.Now().Add(-time.Hour)
	c.PutStamped("peer-filled", 1, old)
	if _, at, ok := c.GetStamped("peer-filled"); !ok || !at.Equal(old) {
		t.Fatalf("GetStamped = (%v, %v), want carried-over stamp %v", at, ok, old)
	}
	before := time.Now()
	c.Put("fresh", 2)
	if _, at, ok := c.GetStamped("fresh"); !ok || at.Before(before) {
		t.Fatalf("Put stamp %v predates the Put (%v)", at, before)
	}
	// Refreshing an entry refreshes its stamp too: the value was
	// re-rendered, so its age restarts.
	c.PutStamped("peer-filled", 3, time.Now())
	if v, at, ok := c.GetStamped("peer-filled"); !ok || v != 3 || at.Equal(old) {
		t.Fatalf("refresh kept the old stamp (v=%d at=%v)", v, at)
	}
	if _, _, ok := c.GetStamped("absent"); ok {
		t.Fatal("GetStamped hit an absent key")
	}
}

func TestPeekIsInvisible(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2) // LRU order now: 2 (MRU), 1 (LRU)
	h0, m0 := c.Stats()
	if v, _, ok := c.Peek(1); !ok || v != 1 {
		t.Fatalf("Peek(1) = (%d, %v)", v, ok)
	}
	if _, _, ok := c.Peek(99); ok {
		t.Fatal("Peek hit an absent key")
	}
	if h, m := c.Stats(); h != h0 || m != m0 {
		t.Fatalf("Peek moved the counters: (%d,%d) -> (%d,%d)", h0, m0, h, m)
	}
	// Peek must not have promoted 1: inserting a third entry still evicts
	// it as the least recently used.
	c.Put(3, 3)
	if _, _, ok := c.Peek(1); ok {
		t.Fatal("Peek promoted the entry it peeked")
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30)
	c.Get(1) // promote: MRU order is now 1, 3, 2
	var keys []int
	c.Range(func(k, v int, at time.Time) bool {
		if at.IsZero() {
			t.Errorf("entry %d has a zero stamp", k)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 2 {
		t.Fatalf("Range order = %v, want [1 3 2]", keys)
	}
	n := 0
	c.Range(func(int, int, time.Time) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: %d calls", n)
	}
	// Reentrant fill: Range snapshots first, so f may Put into the same
	// cache family without deadlocking.
	dst := New[int, int](3)
	c.Range(func(k, v int, at time.Time) bool {
		dst.PutStamped(k, v, at)
		return true
	})
	if dst.Len() != 3 {
		t.Fatalf("snapshot/fill copied %d entries, want 3", dst.Len())
	}
}
