// Package lru provides the concurrency-safe LRU cache and the
// singleflight call deduplicator shared by the layers that memoize
// simulation work: the fleet profiler's measurement cache and the
// experiment harness's compiled run-plan cache. Both structures exist for
// the same reason the paper's framework caches its offload plans — the
// simulator should never pay twice for work that is a pure function of
// its inputs.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU cache.
type Cache[K comparable, V any] struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List
	index        map[K]*list.Element
	hits, misses int64
	evictions    int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New creates an LRU cache holding at most capacity entries; a zero or
// negative capacity panics, because a cacheless memo would silently rerun
// every computation.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: cache capacity must be positive")
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// GetQuiet is Get without touching the hit/miss counters, for
// double-checked paths whose first Get already counted the lookup.
func (c *Cache[K, V]) GetQuiet(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.index[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.index, last.Value.(*entry[K, V]).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many entries capacity pressure has pushed out.
// Observing it from outside (the serve /metrics endpoint does) is what
// distinguishes "the cache is big enough" from "every miss is a
// capacity miss re-paying a simulation".
func (c *Cache[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Singleflight coalesces concurrent calls with equal keys into one
// execution: the first caller runs fn, later callers with the same key
// block and receive the same result. Unlike a cache it remembers nothing —
// once the flight lands its key is forgotten, so the caller decides what
// (if anything) to memoize. Pairing it with a Cache turns "concurrent
// identical requests race to fill the LRU, each paying a full simulation"
// into "one simulation, shared by everyone who asked while it ran".
type Singleflight[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	// panicked records a panic value from fn so waiters can re-panic
	// instead of silently receiving the zero value.
	panicked any
}

// Do executes fn under the key, coalescing with any in-progress call for
// the same key. It reports whether this caller shared another caller's
// execution.
func (s *Singleflight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	s.mu.Lock()
	if s.flights == nil {
		s.flights = make(map[K]*flight[V])
	}
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-fl.done
		if fl.panicked != nil {
			// The owner's fn panicked; a zero value with a nil error
			// would be silently wrong, so waiters re-panic like the
			// owner did (x/sync/singleflight semantics).
			panic(fl.panicked)
		}
		return fl.val, fl.err, true
	}
	fl := &flight[V]{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	// Land the flight even if fn panics: leaving the entry in place would
	// park every later caller for this key on a channel nobody closes.
	// The panic is recorded for waiters and re-raised for the owner.
	defer func() {
		if r := recover(); r != nil {
			fl.panicked = r
		}
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(fl.done)
		if fl.panicked != nil {
			panic(fl.panicked)
		}
	}()
	fl.val, fl.err = fn()
	return fl.val, fl.err, false
}
