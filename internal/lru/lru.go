// Package lru provides the concurrency-safe LRU cache and the
// singleflight call deduplicator shared by the layers that memoize
// simulation work: the fleet profiler's measurement cache and the
// experiment harness's compiled run-plan cache. Both structures exist for
// the same reason the paper's framework caches its offload plans — the
// simulator should never pay twice for work that is a pure function of
// its inputs.
package lru

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a concurrency-safe LRU cache. Every entry carries the wall
// clock of the Put that created it, so a consumer serving cached bodies
// can label how old an answer is (the serve layer's stale-serve
// contract) and a peer filling its cache from another replica can
// preserve the original render time instead of laundering it as fresh.
type Cache[K comparable, V any] struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List
	index        map[K]*list.Element
	hits, misses int64
	evictions    int64
}

type entry[K comparable, V any] struct {
	key K
	val V
	// at is when the value was rendered: the Put time, or the upstream
	// stamp a PutStamped caller carried over from a peer.
	at time.Time
}

// New creates an LRU cache holding at most capacity entries; a zero or
// negative capacity panics, because a cacheless memo would silently rerun
// every computation.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: cache capacity must be positive")
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	v, _, ok := c.GetStamped(k)
	return v, ok
}

// GetStamped is Get plus the entry's render stamp (the Put time, or the
// carried-over stamp of a PutStamped fill).
func (c *Cache[K, V]) GetStamped(k K) (V, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*entry[K, V])
		return e.val, e.at, true
	}
	c.misses++
	var zero V
	return zero, time.Time{}, false
}

// GetQuiet is Get without touching the hit/miss counters, for
// double-checked paths whose first Get already counted the lookup.
func (c *Cache[K, V]) GetQuiet(k K) (V, bool) {
	v, _, ok := c.GetQuietStamped(k)
	return v, ok
}

// GetQuietStamped is GetStamped without touching the hit/miss counters.
func (c *Cache[K, V]) GetQuietStamped(k K) (V, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[K, V])
		return e.val, e.at, true
	}
	var zero V
	return zero, time.Time{}, false
}

// Peek returns the cached value and stamp without counting the lookup or
// promoting the entry. Peer cache-fill scans answer through it so another
// replica's warmup traffic cannot distort this cache's recency order or
// its hit-rate accounting.
func (c *Cache[K, V]) Peek(k K) (V, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		e := el.Value.(*entry[K, V])
		return e.val, e.at, true
	}
	var zero V
	return zero, time.Time{}, false
}

// Put inserts or refreshes a value stamped with the current time,
// evicting the least recently used entry when the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.PutStamped(k, v, time.Now())
}

// PutStamped is Put with an explicit render stamp, for fills whose value
// was rendered elsewhere (a peer cache-fill carries the original
// replica's stamp so staleness is measured from the render, not the
// copy).
func (c *Cache[K, V]) PutStamped(k K, v V, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		e := el.Value.(*entry[K, V])
		e.val = v
		e.at = at
		c.ll.MoveToFront(el)
		return
	}
	c.index[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v, at: at})
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.index, last.Value.(*entry[K, V]).key)
		c.evictions++
	}
}

// Range calls f for every cached entry from most to least recently used,
// stopping early when f returns false. It snapshots the entries under the
// lock first, so f may call back into the cache (a snapshot/fill loop
// re-Putting entries into another cache does). Values are whatever Put
// stored — callers sharing mutable values across caches share them here
// too.
func (c *Cache[K, V]) Range(f func(K, V, time.Time) bool) {
	c.mu.Lock()
	snap := make([]entry[K, V], 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		snap = append(snap, *el.Value.(*entry[K, V]))
	}
	c.mu.Unlock()
	for i := range snap {
		if !f(snap[i].key, snap[i].val, snap[i].at) {
			return
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many entries capacity pressure has pushed out.
// Observing it from outside (the serve /metrics endpoint does) is what
// distinguishes "the cache is big enough" from "every miss is a
// capacity miss re-paying a simulation".
func (c *Cache[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Singleflight coalesces concurrent calls with equal keys into one
// execution: the first caller runs fn, later callers with the same key
// block and receive the same result. Unlike a cache it remembers nothing —
// once the flight lands its key is forgotten, so the caller decides what
// (if anything) to memoize. Pairing it with a Cache turns "concurrent
// identical requests race to fill the LRU, each paying a full simulation"
// into "one simulation, shared by everyone who asked while it ran".
type Singleflight[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	// panicked records a panic value from fn so waiters can re-panic
	// instead of silently receiving the zero value.
	panicked any
}

// Do executes fn under the key, coalescing with any in-progress call for
// the same key. It reports whether this caller shared another caller's
// execution.
func (s *Singleflight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	s.mu.Lock()
	if s.flights == nil {
		s.flights = make(map[K]*flight[V])
	}
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-fl.done
		if fl.panicked != nil {
			// The owner's fn panicked; a zero value with a nil error
			// would be silently wrong, so waiters re-panic like the
			// owner did (x/sync/singleflight semantics).
			panic(fl.panicked)
		}
		return fl.val, fl.err, true
	}
	fl := &flight[V]{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	// Land the flight even if fn panics: leaving the entry in place would
	// park every later caller for this key on a channel nobody closes.
	// The panic is recorded for waiters and re-raised for the owner.
	defer func() {
		if r := recover(); r != nil {
			fl.panicked = r
		}
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(fl.done)
		if fl.panicked != nil {
			panic(fl.panicked)
		}
	}()
	fl.val, fl.err = fn()
	return fl.val, fl.err, false
}
