// Package units defines the physical quantities shared by every substrate
// in the simulator: byte counts, bandwidths, and floating-point operation
// counts. Keeping them as distinct named types catches a whole class of
// unit-confusion bugs (bytes vs elements, GB vs GiB) at compile time.
package units

import (
	"fmt"
	"time"
)

// Bytes is a size in bytes. Negative values are invalid except as deltas
// in memory timelines.
type Bytes int64

// Common byte quantities. Decimal units (KB, MB, ...) follow storage-vendor
// convention; binary units (KiB, MiB, ...) follow memory convention. SSD
// endurance ratings use decimal units, GPU memory uses binary units, so the
// codebase needs both.
const (
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
	PB Bytes = 1e15

	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// String renders the size with a human-friendly decimal suffix.
func (b Bytes) String() string {
	switch {
	case b >= PB || b <= -PB:
		return fmt.Sprintf("%.2f PB", float64(b)/float64(PB))
	case b >= TB || b <= -TB:
		return fmt.Sprintf("%.2f TB", float64(b)/float64(TB))
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.2f GB", float64(b)/float64(GB))
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.2f MB", float64(b)/float64(MB))
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.2f KB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// GiBf returns the size in binary gigabytes as a float, the unit used by
// the paper's memory-peak figures.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// GBf returns the size in decimal gigabytes as a float, the unit used by
// the paper's offload-amount and bandwidth figures.
func (b Bytes) GBf() float64 { return float64(b) / float64(GB) }

// TBf returns the size in decimal terabytes as a float.
func (b Bytes) TBf() float64 { return float64(b) / float64(TB) }

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidth quantities.
const (
	KBps Bandwidth = 1e3
	MBps Bandwidth = 1e6
	GBps Bandwidth = 1e9
)

// String renders the bandwidth in GB/s, the unit used throughout the paper.
func (bw Bandwidth) String() string {
	return fmt.Sprintf("%.2f GB/s", float64(bw)/float64(GBps))
}

// GBps_ returns the bandwidth in decimal GB/s as a float.
func (bw Bandwidth) GBpsF() float64 { return float64(bw) / float64(GBps) }

// TimeFor returns how long moving n bytes takes at this bandwidth,
// rounded up to the nanosecond so zero-duration transfers cannot occur
// for nonzero sizes.
func (bw Bandwidth) TimeFor(n Bytes) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	secs := float64(n) / float64(bw)
	d := time.Duration(secs * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// FLOPs counts floating-point operations (not a rate).
type FLOPs float64

// Common operation counts.
const (
	MFLOP FLOPs = 1e6
	GFLOP FLOPs = 1e9
	TFLOP FLOPs = 1e12
	PFLOP FLOPs = 1e15
)

// FLOPSRate is a compute rate in FLOP per second.
type FLOPSRate float64

// Common compute rates.
const (
	GFLOPS FLOPSRate = 1e9
	TFLOPS FLOPSRate = 1e12
	PFLOPS FLOPSRate = 1e15
)

// String renders the rate in TFLOP/s, the unit used by the paper's
// throughput plots.
func (r FLOPSRate) String() string {
	return fmt.Sprintf("%.1f TFLOP/s", float64(r)/float64(TFLOPS))
}

// TimeFor returns how long executing n operations takes at this rate,
// rounded up to the nanosecond for nonzero work.
func (r FLOPSRate) TimeFor(n FLOPs) time.Duration {
	if n <= 0 || r <= 0 {
		return 0
	}
	secs := float64(n) / float64(r)
	d := time.Duration(secs * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// Rate divides work by time, returning the achieved rate.
func Rate(n FLOPs, d time.Duration) FLOPSRate {
	if d <= 0 {
		return 0
	}
	return FLOPSRate(float64(n) / d.Seconds())
}

// BandwidthOf divides bytes by time, returning the achieved bandwidth.
func BandwidthOf(n Bytes, d time.Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) / d.Seconds())
}
