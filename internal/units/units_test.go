package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{999, "999 B"},
		{KB, "1.00 KB"},
		{1536 * MB, "1.54 GB"},
		{2 * TB, "2.00 TB"},
		{3 * PB, "3.00 PB"},
		{-2 * GB, "-2.00 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestByteUnitConversions(t *testing.T) {
	if GiB != 1<<30 {
		t.Fatalf("GiB = %d", GiB)
	}
	if (2 * GiB).GiBf() != 2.0 {
		t.Errorf("GiBf: %v", (2 * GiB).GiBf())
	}
	if (3 * GB).GBf() != 3.0 {
		t.Errorf("GBf: %v", (3 * GB).GBf())
	}
	if (5 * TB).TBf() != 5.0 {
		t.Errorf("TBf: %v", (5 * TB).TBf())
	}
}

func TestBandwidthTimeFor(t *testing.T) {
	bw := Bandwidth(1 * GBps)
	if got := bw.TimeFor(1 * GB); got != time.Second {
		t.Errorf("1GB at 1GB/s = %v, want 1s", got)
	}
	if got := bw.TimeFor(0); got != 0 {
		t.Errorf("0 bytes should take 0, got %v", got)
	}
	// Tiny transfers round up to 1ns rather than vanishing.
	if got := Bandwidth(100 * GBps).TimeFor(1); got < time.Nanosecond {
		t.Errorf("sub-ns transfer rounded to %v", got)
	}
	if got := Bandwidth(0).TimeFor(GB); got != 0 {
		t.Errorf("zero bandwidth should yield 0 (guarded), got %v", got)
	}
}

func TestFLOPSRateTimeFor(t *testing.T) {
	r := FLOPSRate(2 * TFLOPS)
	if got := r.TimeFor(2 * TFLOP); got != time.Second {
		t.Errorf("2 TFLOP at 2 TFLOP/s = %v", got)
	}
	if got := r.TimeFor(0); got != 0 {
		t.Errorf("zero work should take 0, got %v", got)
	}
}

func TestRateRoundTrip(t *testing.T) {
	r := Rate(100*GFLOP, time.Second)
	if r != FLOPSRate(100*GFLOPS) {
		t.Errorf("Rate = %v", r)
	}
	if Rate(GFLOP, 0) != 0 {
		t.Errorf("zero duration should yield 0 rate")
	}
	if BandwidthOf(GB, time.Second) != Bandwidth(GBps) {
		t.Errorf("BandwidthOf mismatch")
	}
}

func TestStringFormats(t *testing.T) {
	if got := Bandwidth(12.5 * GBps).String(); got != "12.50 GB/s" {
		t.Errorf("bandwidth string: %q", got)
	}
	if got := FLOPSRate(312 * TFLOPS).String(); got != "312.0 TFLOP/s" {
		t.Errorf("rate string: %q", got)
	}
}

// Property: transfer time is monotone in size and inversely monotone in
// bandwidth.
func TestTimeForMonotonic(t *testing.T) {
	f := func(a, b uint32, bw uint32) bool {
		lo, hi := Bytes(a), Bytes(a)+Bytes(b)
		w := Bandwidth(bw%1000+1) * MBps
		return w.TimeFor(lo) <= w.TimeFor(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(n uint32, b1, b2 uint16) bool {
		slow := Bandwidth(b1%999+1) * MBps
		fast := slow + Bandwidth(b2+1)*MBps
		return fast.TimeFor(Bytes(n)) <= slow.TimeFor(Bytes(n))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rate inverts TimeFor within rounding error.
func TestRateInvertsTimeFor(t *testing.T) {
	f := func(work uint32) bool {
		w := FLOPs(work) + 1e6
		r := FLOPSRate(5 * TFLOPS)
		d := r.TimeFor(w)
		back := Rate(w, d)
		ratio := float64(back) / float64(r)
		return ratio > 0.99 && ratio < 1.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
