package pcie

import (
	"testing"
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/units"
)

func TestEffectiveBandwidth(t *testing.T) {
	cfg := DefaultGen4x16()
	eff := cfg.Effective()
	// Gen4 x16 ≈ 31.5 GB/s raw; at 0.82 efficiency ≈ 25.8 GB/s.
	if eff < 25*units.GBps || eff > 27*units.GBps {
		t.Errorf("gen4 x16 effective = %v", eff)
	}
	g3 := LinkConfig{Gen: Gen3, Lanes: 16, Efficiency: 0.82}
	g5 := LinkConfig{Gen: Gen5, Lanes: 16, Efficiency: 0.82}
	if g3.Effective() >= eff || g5.Effective() <= eff {
		t.Errorf("generation ordering wrong: g3=%v g4=%v g5=%v", g3.Effective(), eff, g5.Effective())
	}
	// Lane scaling.
	x8 := LinkConfig{Gen: Gen4, Lanes: 8, Efficiency: 0.82}
	ratio := float64(eff) / float64(x8.Effective())
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("x16/x8 = %v", ratio)
	}
}

func TestEffectiveValidation(t *testing.T) {
	for _, bad := range []LinkConfig{
		{Gen: Gen4, Lanes: 0, Efficiency: 0.8},
		{Gen: Gen4, Lanes: 16, Efficiency: 0},
		{Gen: Gen4, Lanes: 16, Efficiency: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			bad.Effective()
		}()
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "pcie0", DefaultGen4x16())
	// Saturate the down direction; the up direction must be unaffected.
	downFin := l.Down(0, 10*units.GB, nil)
	upFin := l.Up(0, units.GB, nil)
	if upFin >= downFin {
		t.Errorf("duplex broken: up %v, down %v", upFin, downFin)
	}
	if l.DownBusyTime() <= l.UpBusyTime() {
		t.Errorf("busy accounting wrong: down %v up %v", l.DownBusyTime(), l.UpBusyTime())
	}
}

func TestLinkFIFOWithinDirection(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "pcie0", DefaultGen4x16())
	f1 := l.Down(0, units.GB, nil)
	f2 := l.Down(0, units.GB, nil)
	if f2 <= f1 {
		t.Errorf("second transfer did not queue: %v then %v", f1, f2)
	}
	// The transfer time matches size/bandwidth plus latency.
	want := l.Effective().TimeFor(units.GB) + l.Config().Latency
	if diff := f1 - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("f1 = %v, want ≈ %v", f1, want)
	}
}
