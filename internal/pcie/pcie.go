// Package pcie models the PCIe interconnect between GPU, host and NVMe
// SSDs: per-generation lane rates, protocol efficiency, and FIFO link
// servers for each traffic direction. SSDTrain's viability argument
// (§III-D) is stated in terms of required PCIe write bandwidth per GPU,
// so the link model is a first-class substrate.
package pcie

import (
	"fmt"
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// Gen is a PCIe generation.
type Gen int

// Supported generations.
const (
	Gen3 Gen = 3
	Gen4 Gen = 4
	Gen5 Gen = 5
)

// perLaneRaw returns the raw per-lane data rate after line coding.
func (g Gen) perLaneRaw() units.Bandwidth {
	switch g {
	case Gen3:
		return 0.985 * units.GBps
	case Gen4:
		return 1.969 * units.GBps
	case Gen5:
		return 3.938 * units.GBps
	default:
		panic(fmt.Sprintf("pcie: unsupported generation %d", int(g)))
	}
}

// LinkConfig describes one PCIe link.
type LinkConfig struct {
	Gen   Gen
	Lanes int
	// Efficiency is the achievable fraction of raw bandwidth after TLP
	// headers, flow control and DMA engine overheads. Measured GPUDirect
	// numbers land around 0.80–0.85 on Gen4 x16.
	Efficiency float64
	// Latency is the fixed per-transfer setup cost (doorbell, DMA
	// descriptor fetch).
	Latency time.Duration
}

// DefaultGen4x16 is the A100-PCIe link used in the paper's testbed.
func DefaultGen4x16() LinkConfig {
	return LinkConfig{Gen: Gen4, Lanes: 16, Efficiency: 0.82, Latency: 3 * time.Microsecond}
}

// Effective returns the usable bandwidth of the link.
func (c LinkConfig) Effective() units.Bandwidth {
	if c.Lanes <= 0 {
		panic("pcie: link needs at least one lane")
	}
	eff := c.Efficiency
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("pcie: efficiency %v out of (0,1]", eff))
	}
	return units.Bandwidth(float64(c.Gen.perLaneRaw()) * float64(c.Lanes) * eff)
}

// Link is a full-duplex PCIe link: independent FIFO servers per direction,
// matching how DMA read and write engines operate concurrently.
type Link struct {
	cfg  LinkConfig
	name string
	down *sim.Server // toward the device (GPU→SSD writes)
	up   *sim.Server // toward the GPU (SSD→GPU reads)

	rec        *spans.Recorder
	downT, upT spans.TrackID
}

// NewLink creates a link on the engine.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig) *Link {
	rec := eng.Recorder()
	return &Link{
		cfg:   cfg,
		name:  name,
		down:  sim.NewServer(eng, name+".down"),
		up:    sim.NewServer(eng, name+".up"),
		rec:   rec,
		downT: rec.RegisterTrack(name + ".down"),
		upT:   rec.RegisterTrack(name + ".up"),
	}
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Reset clears both directions' queues and accounting for reuse by a new
// simulation on the same (reset) engine.
func (l *Link) Reset() {
	l.down.Reset()
	l.up.Reset()
}

// Effective returns the usable bandwidth per direction.
func (l *Link) Effective() units.Bandwidth { return l.cfg.Effective() }

// Down submits a device-bound transfer (e.g. activation store) that cannot
// begin before ready; done runs at completion. Returns the finish time.
func (l *Link) Down(ready time.Duration, n units.Bytes, done func()) time.Duration {
	dur := l.cfg.Latency + l.Effective().TimeFor(n)
	finish := l.down.Submit(ready, dur, done)
	l.rec.Span(l.downT, spans.KindDMA, -1, l.name, finish-dur, finish, n, 0)
	return finish
}

// Up submits a GPU-bound transfer (e.g. activation reload). Returns the
// finish time.
func (l *Link) Up(ready time.Duration, n units.Bytes, done func()) time.Duration {
	dur := l.cfg.Latency + l.Effective().TimeFor(n)
	finish := l.up.Submit(ready, dur, done)
	l.rec.Span(l.upT, spans.KindDMA, -1, l.name, finish-dur, finish, n, 0)
	return finish
}

// DownBusyTime returns cumulative busy time in the device direction.
func (l *Link) DownBusyTime() time.Duration { return l.down.BusyTime() }

// UpBusyTime returns cumulative busy time in the GPU direction.
func (l *Link) UpBusyTime() time.Duration { return l.up.BusyTime() }

// DownBusyUntil returns the device-direction queue's backlog horizon.
func (l *Link) DownBusyUntil() time.Duration { return l.down.BusyUntil() }

// UpBusyUntil returns the GPU-direction queue's backlog horizon.
func (l *Link) UpBusyUntil() time.Duration { return l.up.BusyUntil() }
