package perfmodel

import (
	"testing"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/parallel"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/units"
)

func TestLLMParams(t *testing.T) {
	if p := GPT175B().Params(); p < 170e9 || p > 185e9 {
		t.Errorf("175B params = %d", p)
	}
	if p := GPT350B().Params(); p < 330e9 || p > 370e9 {
		t.Errorf("350B params = %d", p)
	}
}

func TestActivationFormula(t *testing.T) {
	sys := System{
		LLM: LLM{Hidden: 12288, Layers: 96, Seq: 2048},
		Par: parallel.Spec{TP: 8, PP: 16, DP: 1, MicroBatch: 2, MicroBatches: 4},
	}
	sbh := float64(2048 * 2 * 12288)
	if got, want := sys.ActivationBytesPerLayer(), units.Bytes(sbh*(10+3)); got != want {
		t.Errorf("per-layer = %v, want %v", got, want)
	}
	sys.Par.SeqParallel = true
	if got, want := sys.ActivationBytesPerLayer(), units.Bytes(sbh*34/8); got != want {
		t.Errorf("SP per-layer = %v, want %v", got, want)
	}
	// Per GPU per step: layers/PP × micro-batches × per-layer.
	if got, want := sys.ActivationsPerGPUPerStep(), units.Bytes(6*4)*sys.ActivationBytesPerLayer(); got != want {
		t.Errorf("per-step = %v, want %v", got, want)
	}
}

// TestFig5PaperClaims asserts the §III-D conclusions the paper draws from
// Fig 5.
func TestFig5PaperClaims(t *testing.T) {
	rows := Fig5()
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	groups := map[string][]Fig5Row{}
	for _, r := range rows {
		groups[r.Case.Label] = append(groups[r.Case.Label], r)
		// "Among all cases, the projected lifespan is more than 2 years."
		if r.Proj.LifespanYears < 2.0 {
			t.Errorf("%s @%d GPUs: lifespan %.2f y < 2", r.Case.Label, r.Case.GPUs, r.Proj.LifespanYears)
		}
		// "The write bandwidth per GPU is no greater than 12.1 GB/s"
		// (paper value; we allow our calibration a ~25% corridor).
		if bw := r.Proj.WriteBandwidth.GBpsF(); bw > 15.2 {
			t.Errorf("%s @%d GPUs: write bw %.1f GB/s too high", r.Case.Label, r.Case.GPUs, bw)
		}
	}
	// "When the system size scales up, the required bandwidth reduces and
	// the projected lifespan increases."
	for label, g := range groups {
		for i := 1; i < len(g); i++ {
			if g[i].Proj.WriteBandwidth > g[i-1].Proj.WriteBandwidth {
				t.Errorf("%s: write bandwidth increased with scale", label)
			}
			if g[i].Proj.LifespanYears < g[i-1].Proj.LifespanYears {
				t.Errorf("%s: lifespan decreased with scale", label)
			}
		}
	}
	// "The maximal activations size per GPU ranges from 0.4 TB to 1.8 TB"
	// — check the diamonds stay within a factor-2 corridor of that range.
	var lo, hi float64 = 1e9, 0
	for _, r := range rows {
		tb := r.Proj.MaxActivations.TBf()
		if tb < lo {
			lo = tb
		}
		if tb > hi {
			hi = tb
		}
	}
	if lo < 0.05 || hi > 3.6 {
		t.Errorf("max activations range [%.2f, %.2f] TB far from paper's [0.4, 1.8]", lo, hi)
	}
}

func TestFig8bPaperClaims(t *testing.T) {
	rows := Fig8b()
	ref := Fig8bReference()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// "In all projected cases, the write bandwidth per GPU is smaller than
	// the original 2-GPU case."
	for _, r := range rows {
		if r.Proj.WriteBandwidth > ref.WriteBandwidth {
			t.Errorf("%s: %.2f GB/s exceeds 2-GPU reference %.2f",
				r.Case.Label, r.Proj.WriteBandwidth.GBpsF(), ref.WriteBandwidth.GBpsF())
		}
	}
	// Bandwidth falls as PP deepens.
	for i := 2; i < len(rows); i++ {
		if rows[i].Proj.WriteBandwidth > rows[i-1].Proj.WriteBandwidth {
			t.Errorf("bandwidth increased from %s to %s", rows[i-1].Case.Label, rows[i].Case.Label)
		}
	}
}

func TestFig1PaperClaims(t *testing.T) {
	f := Fig1()
	// All three series grow.
	if f.Throughput.AnnualFactor <= 1 || f.Memory.AnnualFactor <= 1 || f.ModelSize.AnnualFactor <= 1 {
		t.Fatalf("non-growing series: %+v", f)
	}
	// Memory grows much slower than compute (paper: ~41%; our dataset
	// lands near 55%) and far slower than model size.
	if f.MemoryVsThroughput >= 0.75 {
		t.Errorf("memory/compute growth ratio %.2f not clearly below 1", f.MemoryVsThroughput)
	}
	if f.ModelSize.AnnualFactor <= f.Throughput.AnnualFactor {
		t.Error("model size should outgrow GPU throughput")
	}
	// Fits should be meaningful.
	if f.Throughput.R2 < 0.7 || f.Memory.R2 < 0.6 {
		t.Errorf("poor fits: R² %.2f / %.2f", f.Throughput.R2, f.Memory.R2)
	}
}

func TestChinchillaScaling(t *testing.T) {
	law := ChinchillaScaling()
	if law.ActivationExponent <= law.OtherExponent {
		t.Error("activations must outgrow other memory (§II-B)")
	}
	if law.ActivationExponent != 5.0/6.0 || law.OtherExponent != 0.5 {
		t.Errorf("exponents: %+v", law)
	}
}

func TestZeROCommDominatesAtScale(t *testing.T) {
	// ZeRO3 layer time should be communication-bound at small micro-batch
	// (the §IV-D note that ZeRO reduces the write-bandwidth requirement).
	cost := gpu.DefaultCostModel(gpu.A100SXM())
	mk := func(dp int) System {
		return System{
			LLM:    GPT175B(),
			Par:    parallel.Spec{TP: 1, PP: 1, DP: dp, ZeRO: parallel.ZeRO3, MicroBatch: 2, MicroBatches: 1},
			GPU:    gpu.A100SXM(),
			Fabric: parallel.DefaultA100Fabric(),
		}
	}
	noZ := mk(1)
	noZ.Par.ZeRO = parallel.ZeROOff
	fz, _ := mk(384).LayerTimes(cost)
	fn, _ := noZ.LayerTimes(cost)
	if fz <= fn {
		t.Errorf("ZeRO3 layer fwd %v not above compute-only %v", fz, fn)
	}
}

func TestTableIIIEstimateMagnitude(t *testing.T) {
	// H8192 L4 B16 TP2: the paper's estimate is 11.13 GB.
	est := TableIIIEstimate(8192, 4, 16, 1024, 2)
	gb := est.GBf()
	if gb < 9 || gb > 14 {
		t.Errorf("estimate = %.2f GB, paper ballpark 11.13", gb)
	}
}

func TestGrowthFitExact(t *testing.T) {
	// A perfect doubling-per-year series fits exactly.
	pts := []TrendPoint{{"a", 2000, 1}, {"b", 2001, 2}, {"c", 2002, 4}, {"d", 2003, 8}}
	fit := FitGrowth(pts)
	if fit.AnnualFactor < 1.999 || fit.AnnualFactor > 2.001 {
		t.Errorf("annual factor = %v", fit.AnnualFactor)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %v", fit.R2)
	}
	yr := fit.DoublingTime.Hours() / 24 / 365.25
	if yr < 0.99 || yr > 1.01 {
		t.Errorf("doubling = %v years", yr)
	}
}

func TestProjectEndurance(t *testing.T) {
	// Fewer drives per GPU proportionally shortens the lifespan.
	sys := Fig5Cases()[0].System
	m4 := ssd.DefaultEnduranceModel()
	m1 := m4
	m1.DrivesPerGPU = 1
	p4 := Project(sys, m4)
	p1 := Project(sys, m1)
	ratio := p4.LifespanYears / p1.LifespanYears
	if ratio < 3.99 || ratio > 4.01 {
		t.Errorf("4-drive/1-drive lifespan ratio = %v", ratio)
	}
}
