package perfmodel

import (
	"math"
	"sort"
	"time"
)

// TrendPoint is one device or model release.
type TrendPoint struct {
	Name string
	Year float64
	// Value is FP16 FLOP/s for throughput series, FP16-element counts for
	// memory/model-size series (the paper normalizes everything to "# of
	// FP16" and FLOPs, Fig 1).
	Value float64
}

// GPUThroughputSeries returns FP16 (tensor) training throughput of
// datacenter accelerators — NVIDIA 100-class GPUs and Google TPUs.
func GPUThroughputSeries() []TrendPoint {
	return []TrendPoint{
		{"P100", 2016.4, 21.2e12},
		{"TPUv2", 2017.4, 46e12},
		{"V100", 2017.5, 125e12},
		{"TPUv3", 2018.4, 123e12},
		{"A100", 2020.4, 312e12},
		{"TPUv4", 2021.4, 275e12},
		{"H100", 2022.7, 989e12},
		{"TPUv5p", 2023.9, 459e12},
		{"B200", 2024.2, 2250e12},
	}
}

// GPUMemorySeries returns device memory capacity in FP16 element counts.
func GPUMemorySeries() []TrendPoint {
	elems := func(gib float64) float64 { return gib * (1 << 30) / 2 }
	return []TrendPoint{
		{"P100", 2016.4, elems(16)},
		{"TPUv2", 2017.4, elems(16)},
		{"V100", 2017.5, elems(32)},
		{"TPUv3", 2018.4, elems(32)},
		{"A100", 2020.4, elems(80)},
		{"TPUv4", 2021.4, elems(32)},
		{"H100", 2022.7, elems(80)},
		{"TPUv5p", 2023.9, elems(95)},
		{"B200", 2024.2, elems(192)},
	}
}

// LLMSizeSeries returns published model parameter counts.
func LLMSizeSeries() []TrendPoint {
	return []TrendPoint{
		{"ELMo", 2018.1, 94e6},
		{"BERT-L", 2018.8, 340e6},
		{"GPT-2", 2019.1, 1.5e9},
		{"T5-11B", 2019.8, 11e9},
		{"GPT-3", 2020.4, 175e9},
		{"MT-NLG", 2022.1, 530e9},
		{"PaLM", 2022.3, 540e9},
		{"GPT-4", 2023.2, 1.8e12},
	}
}

// GrowthFit is an exponential trend fit value = a·10^(k·year).
type GrowthFit struct {
	// AnnualFactor is the fitted year-over-year multiplier.
	AnnualFactor float64
	// DoublingTime is how long the series takes to double.
	DoublingTime time.Duration
	// R2 is the log-space coefficient of determination.
	R2 float64
}

// FitGrowth least-squares fits an exponential to a series in log space.
func FitGrowth(pts []TrendPoint) GrowthFit {
	if len(pts) < 2 {
		return GrowthFit{AnnualFactor: 1}
	}
	sorted := make([]TrendPoint, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Year < sorted[j].Year })
	var sx, sy, sxx, sxy float64
	n := float64(len(sorted))
	for _, p := range sorted {
		x := p.Year
		y := math.Log10(p.Value)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	// R² in log space.
	meanY := sy / n
	var ssRes, ssTot float64
	for _, p := range sorted {
		y := math.Log10(p.Value)
		f := intercept + slope*p.Year
		ssRes += (y - f) * (y - f)
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	factor := math.Pow(10, slope)
	doubling := time.Duration(math.MaxInt64)
	if slope > 0 {
		years := math.Log10(2) / slope
		doubling = time.Duration(years * 365.25 * 24 * float64(time.Hour))
	}
	return GrowthFit{AnnualFactor: factor, DoublingTime: doubling, R2: r2}
}

// Fig1 summarizes the paper's Fig 1 argument quantitatively.
type Fig1Summary struct {
	Throughput GrowthFit
	Memory     GrowthFit
	ModelSize  GrowthFit
	// MemoryVsThroughput is the ratio of log-growth rates — the paper
	// reports GPU memory growing at ~41% the rate of compute throughput.
	MemoryVsThroughput float64
}

// Fig1 fits the three series.
func Fig1() Fig1Summary {
	th := FitGrowth(GPUThroughputSeries())
	mem := FitGrowth(GPUMemorySeries())
	sz := FitGrowth(LLMSizeSeries())
	ratio := math.Log10(mem.AnnualFactor) / math.Log10(th.AnnualFactor)
	return Fig1Summary{Throughput: th, Memory: mem, ModelSize: sz, MemoryVsThroughput: ratio}
}

// ScalingLaw reproduces §II-B's argument: under Chinchilla scaling
// (N ∝ C^0.5, D_batch ∝ C^0.5) with h a slow function of N (h ∝ N^1/3),
// activation memory grows as C^(5/6) while other memory grows as C^0.5 —
// so activations dominate and memory pressure worsens as compute scales.
type ScalingLaw struct {
	// ActivationExponent is d log S_act / d log C.
	ActivationExponent float64
	// OtherExponent is d log S_others / d log C.
	OtherExponent float64
}

// ChinchillaScaling returns the paper's exponents: S_act ∝ N·D/h =
// C^0.5 · C^0.5 / C^(1/6) = C^(5/6); S_others ∝ N = C^0.5.
func ChinchillaScaling() ScalingLaw {
	return ScalingLaw{ActivationExponent: 5.0 / 6.0, OtherExponent: 0.5}
}
