package perfmodel

import (
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/parallel"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/units"
)

// Fig8bCase is one bar of Fig 8(b): upscaling the 3-layer hidden-12K BERT
// workload with typical parallelism configurations.
type Fig8bCase struct {
	Label string
	Par   parallel.Spec
	LLM   LLM
}

// Fig8bCases returns the paper's five upscaling points:
// (PP1 TP4 L3), (PP1 TP8 L3), (PP2 TP8 L6), (PP4 TP8 L12), (PP8 TP8 L24).
func Fig8bCases() []Fig8bCase {
	base := LLM{Name: "BERT-12K", Hidden: 12288, Seq: 1024, Vocab: 30720, Causal: false}
	mk := func(pp, tp, layers int) Fig8bCase {
		llm := base
		llm.Layers = layers
		return Fig8bCase{
			Label: labelFor(pp, tp, layers),
			Par: parallel.Spec{
				TP: tp, PP: pp, DP: 1,
				MicroBatch: 16, MicroBatches: pp, // keep the pipeline full
				SeqParallel: true,
			},
			LLM: llm,
		}
	}
	return []Fig8bCase{
		mk(1, 4, 3),
		mk(1, 8, 3),
		mk(2, 8, 6),
		mk(4, 8, 12),
		mk(8, 8, 24),
	}
}

func labelFor(pp, tp, layers int) string {
	return "PP" + itoa(pp) + " TP" + itoa(tp) + " L" + itoa(layers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Fig8bRow is one projected bar.
type Fig8bRow struct {
	Case Fig8bCase
	Proj Projection
}

// Fig8b projects per-GPU write bandwidth under upscaling; the paper's
// finding is that every upscaled configuration needs less write bandwidth
// per GPU than the original 2-GPU testbed (§IV-D "Impact of upscaling":
// LLM scaling is weak scaling, so I/O gets easier to hide).
func Fig8b() []Fig8bRow {
	model := ssd.DefaultEnduranceModel()
	spec := gpu.A100PCIe()
	fabric := parallel.DefaultA100Fabric()
	cases := Fig8bCases()
	rows := make([]Fig8bRow, len(cases))
	for i, c := range cases {
		sys := System{LLM: c.LLM, Par: c.Par, GPU: spec, Fabric: fabric}
		rows[i] = Fig8bRow{Case: c, Proj: Project(sys, model)}
	}
	return rows
}

// Fig8bReference projects the original testbed configuration (TP2, one
// node) under the same model — the orange dashed line of Fig 8(b).
func Fig8bReference() Projection {
	model := ssd.DefaultEnduranceModel()
	llm := LLM{Name: "BERT-12K", Hidden: 12288, Layers: 3, Seq: 1024, Vocab: 30720}
	par := parallel.Spec{TP: 2, PP: 1, DP: 1, MicroBatch: 16, MicroBatches: 1, SeqParallel: true}
	sys := System{LLM: llm, Par: par, GPU: gpu.A100PCIe(), Fabric: parallel.DefaultA100Fabric()}
	return Project(sys, model)
}

// TableIIIEstimate is the analytic offload-amount estimate the paper
// compares against measurement (Table III): the activation formula
// applied to the evaluation geometry, minus the kept last layer and the
// head, for one micro-batch.
func TableIIIEstimate(hidden, layers, batch, seq, tp int) units.Bytes {
	sbh := float64(seq) * float64(batch) * float64(hidden)
	perLayer := sbh * (10 + 24/float64(tp))
	embed := sbh * 3 // embedding output + dropout mask
	// All layers but the last are offloaded; the head stays resident.
	return units.Bytes(perLayer*float64(layers-1) + embed)
}
