package perfmodel

import (
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/parallel"
	"ssdtrain/internal/ssd"
)

// Fig5Case is one bar group of Fig 5.
type Fig5Case struct {
	Label     string
	Framework string // "Megatron" or "ZeRO3"
	GPUs      int
	System    System
}

// Fig5Cases returns the paper's twelve Fig 5 configurations: Megatron
// 175B/350B and DeepSpeed stage-3 ZeRO 175B/350B, each at three system
// sizes, following the parallelism layouts of the Megatron-LM and
// DeepSpeed references. Global batch sizes follow GPT-3 scale practice
// (1536/1920 sequences).
func Fig5Cases() []Fig5Case {
	spec := gpu.A100SXM()
	fabric := parallel.DefaultA100Fabric()
	var cases []Fig5Case

	mk := func(label, fw string, llm LLM, par parallel.Spec) {
		cases = append(cases, Fig5Case{
			Label:     label,
			Framework: fw,
			GPUs:      par.GPUs(),
			System:    System{LLM: llm, Par: par, GPU: spec, Fabric: fabric},
		})
	}

	// Megatron 175B: TP8 × PP16 with sequence parallelism (the measured
	// Megatron-LM configuration), DP scales 3/6/12 (384/768/1536 GPUs);
	// global batch 1536, micro-batch 2 (typical, §IV-D).
	for _, dp := range []int{3, 6, 12} {
		mb := 2
		par := parallel.Spec{TP: 8, PP: 16, DP: dp, MicroBatch: mb,
			MicroBatches: 1536 / (mb * dp), SeqParallel: true}
		mk("Megatron 175B", "Megatron", GPT175B(), par)
	}
	// Megatron 350B: TP8 × PP14 with sequence parallelism, DP 5/10/20
	// (560/1120/2240 GPUs); global batch 1920, micro-batch 2.
	for _, dp := range []int{5, 10, 20} {
		mb := 2
		par := parallel.Spec{TP: 8, PP: 14, DP: dp, MicroBatch: mb,
			MicroBatches: 1920 / (mb * dp), SeqParallel: true}
		mk("Megatron 350B", "Megatron", GPT350B(), par)
	}
	// ZeRO3: pure sharded data parallelism (DeepSpeed stage 3),
	// micro-batch 2 per GPU.
	for _, gpus := range []int{384, 768, 1536} {
		par := parallel.Spec{TP: 1, PP: 1, DP: gpus, ZeRO: parallel.ZeRO3, MicroBatch: 2, MicroBatches: 1}
		mk("ZeRO3 175B", "ZeRO3", GPT175B(), par)
	}
	for _, gpus := range []int{640, 1120, 2240} {
		par := parallel.Spec{TP: 1, PP: 1, DP: gpus, ZeRO: parallel.ZeRO3, MicroBatch: 2, MicroBatches: 1}
		mk("ZeRO3 350B", "ZeRO3", GPT350B(), par)
	}
	return cases
}

// Fig5Row is a projected Fig 5 bar.
type Fig5Row struct {
	Case Fig5Case
	Proj Projection
}

// Fig5 projects all cases with the paper's endurance assumptions (four
// Samsung 980 PRO 1TB per GPU, workload WAF 1, 1-day retention).
func Fig5() []Fig5Row {
	model := ssd.DefaultEnduranceModel()
	cases := Fig5Cases()
	rows := make([]Fig5Row, len(cases))
	for i, c := range cases {
		rows[i] = Fig5Row{Case: c, Proj: Project(c.System, model)}
	}
	return rows
}
