// Package perfmodel ports the paper's §III-D performance modelling (built
// on llm-analysis): a per-layer roofline pipeline
//
//	t = max( Σ_l max(t_l,compute, t_l,memory), t_ZeRO,communicate )
//
// combined with pipeline scheduling, analytic activation-size formulas,
// and the SSD endurance model, to project step time, per-GPU activation
// volume, required PCIe write bandwidth and SSD lifespan for large-scale
// systems (Fig 5), upscaling behaviour (Fig 8b), and the Table III
// offload estimates.
package perfmodel

import (
	"fmt"
	"time"

	"ssdtrain/internal/gpu"
	"ssdtrain/internal/parallel"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/units"
)

// LLM describes a large model for projection purposes.
type LLM struct {
	Name   string
	Hidden int
	Layers int
	Seq    int
	Vocab  int
	// Causal halves fused-attention work (decoder models).
	Causal bool
}

// Params returns the approximate parameter count (12·L·h² + vocab·h).
func (m LLM) Params() int64 {
	h := int64(m.Hidden)
	return 12*int64(m.Layers)*h*h + int64(m.Vocab)*h
}

// GPT175B is the GPT-3 scale reference model.
func GPT175B() LLM {
	return LLM{Name: "GPT-175B", Hidden: 12288, Layers: 96, Seq: 2048, Vocab: 51200, Causal: true}
}

// GPT350B is the ~350B parameter configuration of Fig 5.
func GPT350B() LLM {
	return LLM{Name: "GPT-350B", Hidden: 16384, Layers: 112, Seq: 2048, Vocab: 51200, Causal: true}
}

// System couples a model with hardware and a parallelism layout.
type System struct {
	LLM    LLM
	Par    parallel.Spec
	GPU    gpu.Spec
	Fabric parallel.Fabric
}

// LayerTimes returns one transformer layer's forward and backward times
// for one micro-batch on one GPU (TP shard), including TP collectives and
// the ZeRO communication pipeline term.
func (s System) LayerTimes(cost *gpu.CostModel) (fwd, bwd time.Duration) {
	h := int64(s.LLM.Hidden)
	t := int64(s.Par.TP)
	n := int64(s.Par.MicroBatch) * int64(s.LLM.Seq)
	seq := int64(s.LLM.Seq)
	const e = 2 // FP16

	hiddenBytes := units.Bytes(n * h * e)

	// Σ_l max(compute, memory) over the layer's operators.
	gemm := func(m, k, nn int64) (time.Duration, time.Duration) {
		f := cost.Matmul(m, k, nn, e)
		b := cost.Matmul(m, nn, k, e) + cost.Matmul(k, m, nn, e)
		return f, b
	}
	addBoth := func(f, b time.Duration) {
		fwd += f
		bwd += b
	}
	addBoth(gemm(n, h, 3*h/t)) // qkv
	attnFLOPs := units.FLOPs(4 * float64(n) * float64(seq) * float64(h/t))
	if s.LLM.Causal {
		attnFLOPs /= 2
	}
	attnIO := units.Bytes(4 * n * h / t * e)
	addBoth(cost.FusedAttention(attnFLOPs, attnIO), cost.FusedAttention(2.5*attnFLOPs, attnIO))
	addBoth(gemm(n, h/t, h))   // proj
	addBoth(gemm(n, h, 4*h/t)) // fc1
	addBoth(gemm(n, 4*h/t, h)) // fc2
	// LayerNorms, residuals, dropouts, gelu: bandwidth-bound traffic of
	// roughly 14 hidden-sized tensors forward, 16 backward. Sequence
	// parallelism shards these across TP ranks.
	lnBytes := hiddenBytes
	if s.Par.SeqParallel {
		lnBytes /= units.Bytes(t)
	}
	addBoth(cost.MemoryBound(14*lnBytes), cost.MemoryBound(16*lnBytes))
	// TP collectives: one all-reduce per direction per sublayer.
	ar := s.Fabric.AllReduceNVLink(hiddenBytes, s.Par.TP)
	fwd += 2 * ar
	bwd += 2 * ar

	// ZeRO-3 pipeline term: parameter all-gathers (forward and backward)
	// and the gradient reduce-scatter, assumed perfectly overlapped with
	// compute at layer granularity (§III-D): the layer takes
	// max(compute, communicate).
	if s.Par.ZeRO >= parallel.ZeRO3 && s.Par.DP > 1 {
		layerParams := units.Bytes(12 * h * h / t * e)
		zf := s.Fabric.AllGatherIB(layerParams, s.Par.DP)
		zb := s.Fabric.AllGatherIB(layerParams, s.Par.DP) + s.Fabric.ReduceScatterIB(layerParams, s.Par.DP)
		if zf > fwd {
			fwd = zf
		}
		if zb > bwd {
			bwd = zb
		}
	}
	return fwd, bwd
}

// ActivationBytesPerLayer returns one micro-batch's per-layer activation
// footprint on one GPU: the Korthikanti et al. formula s·b·h·(10 + 24/t)
// bytes for FP16 with fused (FlashAttention) kernels — or s·b·h·34/t with
// sequence parallelism, where the LayerNorm/dropout activations shard
// too. The paper's S_activations model builds on these and Table III
// validates them.
func (s System) ActivationBytesPerLayer() units.Bytes {
	sbh := float64(s.LLM.Seq) * float64(s.Par.MicroBatch) * float64(s.LLM.Hidden)
	if s.Par.SeqParallel {
		return units.Bytes(sbh * 34 / float64(s.Par.TP))
	}
	return units.Bytes(sbh * (10 + 24/float64(s.Par.TP)))
}

// ActivationsPerGPUPerStep returns S_activations: the activation volume
// one GPU produces in one step (all micro-batches, its pipeline stage's
// layers).
func (s System) ActivationsPerGPUPerStep() units.Bytes {
	layersPerStage := s.LLM.Layers / s.Par.PP
	return units.Bytes(int64(layersPerStage)*int64(s.Par.MicroBatches)) * s.ActivationBytesPerLayer()
}

// Projection is a Fig 5 row.
type Projection struct {
	System   System
	StepTime time.Duration
	// PerGPUThroughput is achieved model FLOP/s per GPU.
	PerGPUThroughput units.FLOPSRate
	// Activations is S_activations per GPU per step.
	Activations units.Bytes
	// WriteBandwidth is the required per-GPU PCIe write bandwidth
	// (activations over half the step time).
	WriteBandwidth units.Bandwidth
	// LifespanYears is the projected SSD lifespan.
	LifespanYears float64
	// MaxActivations is the maximal per-GPU activation working set when
	// only two layers stay resident (the Fig 5 diamonds).
	MaxActivations units.Bytes
}

// Project runs the §III-D model for a system.
func Project(s System, endurance ssd.EnduranceModel) Projection {
	if err := s.Par.Validate(); err != nil {
		panic(fmt.Sprintf("perfmodel: %v", err))
	}
	cost := gpu.DefaultCostModel(s.GPU)
	fwd, bwd := s.LayerTimes(cost)
	layersPerStage := s.LLM.Layers / s.Par.PP
	fPerMB := fwd * time.Duration(layersPerStage)
	bPerMB := bwd * time.Duration(layersPerStage)

	// Pipeline fill/drain via the ideal bubble fraction.
	m := float64(s.Par.MicroBatches)
	p := float64(s.Par.PP)
	compute := time.Duration(float64(fPerMB+bPerMB) * m)
	step := time.Duration(float64(compute) * (m + p - 1) / m)

	// Stage-to-stage communication (PP) and the DP gradient all-reduce
	// (non-ZeRO; ZeRO's collectives are folded into the layer pipeline).
	if s.Par.PP > 1 {
		hiddenBytes := units.Bytes(int64(s.Par.MicroBatch) * int64(s.LLM.Seq) * int64(s.LLM.Hidden) * 2 / int64(s.Par.TP))
		step += time.Duration(2*float64(s.Par.MicroBatches)) * s.Fabric.P2P(hiddenBytes)
	}
	shard := int64(s.Par.TP * s.Par.PP)
	shardBytes := units.Bytes(2 * s.LLM.Params() / shard)
	if s.Par.ZeRO == parallel.ZeROOff && s.Par.DP > 1 {
		step += s.Fabric.AllReduceIB(shardBytes, s.Par.DP)
	}
	// Optimizer update on the shard.
	step += cost.MemoryBound(3 * shardBytes)

	act := s.ActivationsPerGPUPerStep()
	wbw := ssd.RequiredWriteBandwidth(act, step)

	// The Fig 5 diamonds assume the larger micro-batches (8–32, nominally
	// 16) that offloading enables. For pipelined configs the per-step
	// activation volume is set by the rank's sequence count and does not
	// change with the micro-batch split; for single-micro-batch ZeRO runs
	// a larger micro-batch means proportionally more activations.
	maxAct := act
	if s.Par.MicroBatches == 1 && s.Par.MicroBatch < 16 {
		maxAct = act * units.Bytes(16/s.Par.MicroBatch)
	}

	// Model FLOPs per GPU per step: 6·P·tokens/GPUs plus attention.
	tokens := float64(s.Par.GlobalBatch()) * float64(s.LLM.Seq)
	attn := 2.0
	if s.LLM.Causal {
		attn = 1.0
	}
	flops := 6*float64(s.LLM.Params())*tokens +
		attn*3.5*float64(s.LLM.Layers)*2*float64(s.LLM.Seq)*float64(s.LLM.Hidden)*tokens
	perGPU := units.FLOPs(flops / float64(s.Par.GPUs()))

	return Projection{
		System:           s,
		StepTime:         step,
		PerGPUThroughput: units.Rate(perGPU, step),
		Activations:      act,
		WriteBandwidth:   wbw,
		LifespanYears:    endurance.LifespanYears(act, step),
		MaxActivations:   maxAct,
	}
}
