package perfmodel

import "testing"

func TestFig5Sanity(t *testing.T) {
	for _, row := range Fig5() {
		p := row.Proj
		t.Logf("%-14s %5d GPUs: step=%8v bw=%7s life=%6.1fy act=%8s thr=%s",
			row.Case.Label, row.Case.GPUs, p.StepTime, p.WriteBandwidth.String(), p.LifespanYears, p.Activations.String(), p.PerGPUThroughput)
	}
}
func TestFig8bSanity(t *testing.T) {
	for _, row := range Fig8b() {
		t.Logf("%-14s: bw=%s step=%v", row.Case.Label, row.Proj.WriteBandwidth, row.Proj.StepTime)
	}
}
func TestFig1Sanity(t *testing.T) {
	f := Fig1()
	t.Logf("throughput x%.2f/yr (R2 %.2f), memory x%.2f/yr (R2 %.2f), model x%.2f/yr, mem/thr ratio %.2f",
		f.Throughput.AnnualFactor, f.Throughput.R2, f.Memory.AnnualFactor, f.Memory.R2, f.ModelSize.AnnualFactor, f.MemoryVsThroughput)
}
