package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func sessionSpec(t *testing.T) Spec {
	t.Helper()
	for _, s := range Specs() {
		if s.File == "BENCH_session.json" {
			return s
		}
	}
	t.Fatal("no session spec")
	return Spec{}
}

func wellFormed() *Report {
	bl := Baseline{NsPerOp: 2000, AllocsPerOp: 4000, Commit: "same-run fresh Execute"}
	return &Report{
		Note: "test",
		Go:   "go1.24.0",
		CPUs: 1,
		Results: map[string]Measurement{
			"session_share_sweep":  {NsPerOp: 1000, AllocsPerOp: 600, Baseline: &bl},
			"session_tiered_sweep": {NsPerOp: 1500, AllocsPerOp: 500, Baseline: &bl},
		},
	}
}

// TestCommittedRecordsValidate is the live contract: the records
// actually committed at the repo root must satisfy their specs.
func TestCommittedRecordsValidate(t *testing.T) {
	for _, spec := range Specs() {
		r, err := ReadReport(filepath.Join("..", "..", spec.File))
		if err != nil {
			t.Fatalf("%s: %v", spec.File, err)
		}
		if err := Validate(r, spec); err != nil {
			t.Errorf("committed record invalid: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	spec := sessionSpec(t)
	mutate := func(f func(*Report)) *Report {
		r := wellFormed()
		f(r)
		return r
	}
	cases := []struct {
		name string
		r    *Report
		want string
	}{
		{"missing result", mutate(func(r *Report) { delete(r.Results, "session_share_sweep") }), "missing result"},
		{"zero ns", mutate(func(r *Report) {
			m := r.Results["session_share_sweep"]
			m.NsPerOp = 0
			r.Results["session_share_sweep"] = m
		}), "not positive"},
		{"zero allocs on allocating path", mutate(func(r *Report) {
			m := r.Results["session_share_sweep"]
			m.AllocsPerOp = 0
			r.Results["session_share_sweep"] = m
		}), "must allocate"},
		{"missing baseline", mutate(func(r *Report) {
			m := r.Results["session_share_sweep"]
			m.Baseline = nil
			r.Results["session_share_sweep"] = m
		}), "missing baseline"},
		{"wrong baseline commit", mutate(func(r *Report) {
			m := r.Results["session_share_sweep"]
			bl := *m.Baseline
			bl.Commit = "d58ffb6"
			m.Baseline = &bl
			r.Results["session_share_sweep"] = m
		}), "baseline commit"},
	}
	for _, tc := range cases {
		err := Validate(tc.r, spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := Validate(wellFormed(), spec); err != nil {
		t.Errorf("well-formed record rejected: %v", err)
	}
}

// TestValidateMinSpeedup pins the speedup floor: a result whose
// recorded speedup is under the spec's MinSpeedup is rejected even when
// everything else about the record is well-formed.
func TestValidateMinSpeedup(t *testing.T) {
	spec := Spec{File: "x", Checks: []Check{
		{Result: "fast", BaselineCommit: "same-run full simulation", MinSpeedup: 10},
	}}
	bl := Baseline{NsPerOp: 10000, AllocsPerOp: 500, Commit: "same-run full simulation"}
	record := func(speedup float64) *Report {
		return &Report{Results: map[string]Measurement{
			"fast": {NsPerOp: bl.NsPerOp / speedup, AllocsPerOp: 50, Baseline: &bl, Speedup: speedup},
		}}
	}
	if err := Validate(record(12.5), spec); err != nil {
		t.Errorf("12.5x rejected: %v", err)
	}
	err := Validate(record(9.5), spec)
	if err == nil || !strings.Contains(err.Error(), "below the required") {
		t.Errorf("9.5x accepted against a 10x floor: %v", err)
	}
}

func TestGate(t *testing.T) {
	spec := sessionSpec(t)
	committed := wellFormed()

	// Within tolerance: +20% on both metrics passes a 25% gate.
	fresh := wellFormed()
	m := fresh.Results["session_share_sweep"]
	m.NsPerOp = 1200
	m.AllocsPerOp = 720
	fresh.Results["session_share_sweep"] = m
	if regs := Gate(committed, fresh, spec, 0.25, 0.25); len(regs) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", regs)
	}

	// Beyond tolerance on both metrics of one result.
	m.NsPerOp = 1400
	m.AllocsPerOp = 800
	fresh.Results["session_share_sweep"] = m
	regs := Gate(committed, fresh, spec, 0.25, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want ns and allocs", regs)
	}
	for _, r := range regs {
		if r.Result != "session_share_sweep" || r.Ratio < 1.3 {
			t.Errorf("unexpected regression %+v", r)
		}
		if !strings.Contains(r.String(), "worsened") {
			t.Errorf("rendering: %q", r.String())
		}
	}

	// An allocation-free committed path regresses on any fresh alloc.
	hot := Spec{File: "x", Checks: []Check{{Result: "engine", AllocFree: true}}}
	c := &Report{Results: map[string]Measurement{"engine": {NsPerOp: 100, AllocsPerOp: 0}}}
	f := &Report{Results: map[string]Measurement{"engine": {NsPerOp: 100, AllocsPerOp: 1}}}
	if regs := Gate(c, f, hot, 0.25, 0.25); len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Errorf("allocation-free regression not caught: %v", regs)
	}
	// Faster + fewer allocs never regresses.
	f = &Report{Results: map[string]Measurement{"engine": {NsPerOp: 10, AllocsPerOp: 0}}}
	if regs := Gate(c, f, hot, 0.25, 0.25); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}
