// Package benchfmt defines the schema of the repo's committed benchmark
// records (BENCH_hotpath.json, BENCH_tier.json, BENCH_session.json,
// BENCH_trace.json, BENCH_steady.json, BENCH_cluster.json), shared by
// cmd/bench (which emits them) and cmd/benchcheck (which
// validates them in CI and gates regressions against the committed
// numbers). One schema in one package is what keeps the emitter and the
// gate from drifting apart — the failure mode of the inline python
// validator this replaces.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is a recorded reference measurement a result is compared to:
// either a pinned historical commit or a same-run fresh-path baseline.
type Baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Commit      string  `json:"commit"`
}

// Measurement is one benchmark's numbers, optionally next to a baseline.
type Measurement struct {
	NsPerOp     float64   `json:"ns_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	Baseline    *Baseline `json:"baseline,omitempty"`
	Speedup     float64   `json:"speedup,omitempty"`
	AllocsRatio float64   `json:"allocs_ratio,omitempty"`
}

// CompareTo fills the measurement's baseline-relative fields. An
// AllocsPerOp of 0 with a nonzero baseline leaves AllocsRatio unset: the
// path became allocation-free and no finite ratio describes that.
func (m *Measurement) CompareTo(bl Baseline) {
	m.Baseline = &bl
	if m.NsPerOp > 0 {
		m.Speedup = bl.NsPerOp / m.NsPerOp
	}
	if m.AllocsPerOp > 0 {
		m.AllocsRatio = float64(bl.AllocsPerOp) / float64(m.AllocsPerOp)
	}
}

// Report is one emitted record file.
type Report struct {
	Note    string                 `json:"note"`
	Go      string                 `json:"go"`
	CPUs    int                    `json:"cpus"`
	Results map[string]Measurement `json:"results"`
}

// ReadReport loads and decodes one record file.
func ReadReport(path string) (*Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &r, nil
}

// Check declares what one result in a record must look like.
type Check struct {
	// Result is the results-map key.
	Result string
	// AllocFree marks hot paths that are allowed (indeed expected) to
	// report zero allocs/op; everything else must allocate something or
	// the record is mismeasured.
	AllocFree bool
	// BaselineCommit, when set, requires a baseline with exactly this
	// commit string and positive numbers.
	BaselineCommit string
	// MinSpeedup, when positive, requires the result's baseline-relative
	// speedup to be at least this factor — the floor a claimed fast path
	// must clear, not merely a regression tolerance.
	MinSpeedup float64
}

// Spec declares one record file's required shape.
type Spec struct {
	// File is the record's base name, e.g. "BENCH_session.json".
	File   string
	Checks []Check
}

// Specs returns the repo's committed records and their required
// results — the contract cmd/bench emits and CI enforces.
func Specs() []Spec {
	return []Spec{
		{
			File: "BENCH_hotpath.json",
			Checks: []Check{
				{Result: "engine_schedule", AllocFree: true, BaselineCommit: "d58ffb6"},
				{Result: "engine_steady_state", AllocFree: true, BaselineCommit: "d58ffb6"},
				{Result: "compiled_sweep", BaselineCommit: "d58ffb6"},
				{Result: "compiled_share_sweep", BaselineCommit: "d58ffb6"},
			},
		},
		{
			File: "BENCH_tier.json",
			Checks: []Check{
				{Result: "tiered_sweep"},
			},
		},
		{
			File: "BENCH_session.json",
			Checks: []Check{
				{Result: "session_share_sweep", BaselineCommit: "same-run fresh Execute"},
				{Result: "session_tiered_sweep", BaselineCommit: "same-run fresh Execute"},
			},
		},
		{
			File: "BENCH_trace.json",
			Checks: []Check{
				// The disabled-recorder emit is the cost every resource pays
				// when tracing is off; the gate defends allocation-free.
				{Result: "recorder_disabled_emit", AllocFree: true},
				{Result: "untraced_share_sweep"},
				{Result: "traced_share_sweep", BaselineCommit: "same-run untraced Execute"},
			},
		},
		{
			File: "BENCH_cluster.json",
			Checks: []Check{
				// The shard lookup runs once per routed request and must
				// stay allocation-free; the hedged-request path (shard key,
				// ring walk, forward, hedge, stale record) may allocate but
				// the gate keeps it lean — its ns/op is bounded below by
				// the bench's hedge delay and the host's timer granularity,
				// so allocs/op is the durable number.
				{Result: "ring_lookup", AllocFree: true},
				{Result: "hedged_request"},
			},
		},
		{
			File: "BENCH_optim.json",
			Checks: []Check{
				{Result: "optim_sync_sweep"},
				// Overlap re-runs the identical points with the
				// optimizer pipeline draining into fwd(t+1); its wall
				// cost tracks the sync sweep's (the schedules trade
				// wins across the residency range), so the gate defends
				// the sweep cost, not a speedup.
				{Result: "optim_overlap_sweep", BaselineCommit: "same-run sync schedule"},
			},
		},
		{
			File: "BENCH_steady.json",
			Checks: []Check{
				{Result: "fullsim_share_sweep_10k"},
				// The steady-state fast path's contract: at least 10x over
				// the same-run full simulation of the identical 10k-step
				// sweep, with byte-identical results (cmd/bench verifies
				// identity before timing; the gate defends the speedup).
				{Result: "steady_share_sweep_10k", BaselineCommit: "same-run full simulation", MinSpeedup: 10},
			},
		},
	}
}

// Validate checks a record against its spec: every required result
// present, plausibly measured, and carrying its required baseline.
func Validate(r *Report, spec Spec) error {
	if len(r.Results) == 0 {
		return fmt.Errorf("benchfmt: %s: no results", spec.File)
	}
	for _, c := range spec.Checks {
		m, ok := r.Results[c.Result]
		if !ok {
			return fmt.Errorf("benchfmt: %s: missing result %q", spec.File, c.Result)
		}
		if m.NsPerOp <= 0 {
			return fmt.Errorf("benchfmt: %s: %s: ns_per_op %v not positive", spec.File, c.Result, m.NsPerOp)
		}
		if m.AllocsPerOp < 0 {
			return fmt.Errorf("benchfmt: %s: %s: negative allocs_per_op %d", spec.File, c.Result, m.AllocsPerOp)
		}
		if m.AllocsPerOp == 0 && !c.AllocFree {
			return fmt.Errorf("benchfmt: %s: %s: allocs_per_op 0 on a path that must allocate (mismeasured?)", spec.File, c.Result)
		}
		if c.BaselineCommit != "" {
			if m.Baseline == nil {
				return fmt.Errorf("benchfmt: %s: %s: missing baseline", spec.File, c.Result)
			}
			if m.Baseline.Commit != c.BaselineCommit {
				return fmt.Errorf("benchfmt: %s: %s: baseline commit %q, want %q", spec.File, c.Result, m.Baseline.Commit, c.BaselineCommit)
			}
			if m.Baseline.NsPerOp <= 0 || m.Baseline.AllocsPerOp <= 0 {
				return fmt.Errorf("benchfmt: %s: %s: baseline numbers not positive (%+v)", spec.File, c.Result, *m.Baseline)
			}
		}
		if c.MinSpeedup > 0 && m.Speedup < c.MinSpeedup {
			return fmt.Errorf("benchfmt: %s: %s: speedup %.2fx below the required %.1fx", spec.File, c.Result, m.Speedup, c.MinSpeedup)
		}
	}
	return nil
}

// Regression is one metric that worsened beyond tolerance.
type Regression struct {
	File      string
	Result    string
	Metric    string // "ns_per_op" or "allocs_per_op"
	Committed float64
	Fresh     float64
	// Ratio is Fresh over Committed (∞ reported as 0-committed cases).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s: %s worsened %.2fx (committed %.1f, fresh %.1f)",
		r.File, r.Result, r.Metric, r.Ratio, r.Committed, r.Fresh)
}

// Gate compares a freshly measured report against the committed one:
// every required result whose ns_per_op or allocs_per_op worsened more
// than the tolerance (0.25 = fail beyond +25%) is reported. A committed
// allocation-free path regresses on its first fresh allocation —
// "allocation-free" is a property the gate defends, not a ratio.
func Gate(committed, fresh *Report, spec Spec, nsTol, allocTol float64) []Regression {
	var regs []Regression
	for _, c := range spec.Checks {
		cm, okC := committed.Results[c.Result]
		fm, okF := fresh.Results[c.Result]
		if !okC || !okF {
			// Validate reports missing results; the gate only compares.
			continue
		}
		if fm.NsPerOp > cm.NsPerOp*(1+nsTol) {
			regs = append(regs, Regression{
				File: spec.File, Result: c.Result, Metric: "ns_per_op",
				Committed: cm.NsPerOp, Fresh: fm.NsPerOp, Ratio: fm.NsPerOp / cm.NsPerOp,
			})
		}
		climit := float64(cm.AllocsPerOp) * (1 + allocTol)
		if float64(fm.AllocsPerOp) > climit {
			reg := Regression{
				File: spec.File, Result: c.Result, Metric: "allocs_per_op",
				Committed: float64(cm.AllocsPerOp), Fresh: float64(fm.AllocsPerOp),
			}
			if cm.AllocsPerOp > 0 {
				reg.Ratio = float64(fm.AllocsPerOp) / float64(cm.AllocsPerOp)
			}
			regs = append(regs, reg)
		}
	}
	return regs
}
