package ssd

import (
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// Device is one NVMe SSD in the discrete-event simulation: independent
// write and read FIFO queues served at the drive's sequential bandwidths,
// with cumulative byte accounting. An optional FTL provides page-accurate
// wear accounting for endurance studies (experiments that only need
// timing skip it — simulating 10⁸ pages per step would be pointless).
type Device struct {
	spec   Spec
	name   string
	writeQ *sim.Server
	readQ  *sim.Server

	hostWritten units.Bytes
	hostRead    units.Bytes

	rec    *spans.Recorder
	wT, rT spans.TrackID

	ftl    *FTL
	mapper *fileMapper
}

// NewDevice creates a device on the engine.
func NewDevice(eng *sim.Engine, name string, spec Spec) *Device {
	rec := eng.Recorder()
	return &Device{
		spec:   spec,
		name:   name,
		writeQ: sim.NewServer(eng, name+".wq"),
		readQ:  sim.NewServer(eng, name+".rq"),
		rec:    rec,
		wT:     rec.RegisterTrack(name + ".write"),
		rT:     rec.RegisterTrack(name + ".read"),
	}
}

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// Reset clears the device's queues and host byte counters for reuse by a
// new simulation and installs the given spec — reused devices are rebound
// to a (possibly differently derated) spec the same way a fresh device
// would be constructed with it. An attached FTL's wear state is NOT
// touched: wear is cumulative physical history, and the endurance
// experiments that attach FTLs do not run on recycled arenas.
func (d *Device) Reset(spec Spec) {
	d.spec = spec
	d.writeQ.Reset()
	d.readQ.Reset()
	d.hostWritten = 0
	d.hostRead = 0
	if d.mapper != nil {
		d.mapper.next = 0
	}
}

// AttachFTL enables page-accurate wear accounting. All subsequent writes
// are mirrored into the FTL as sequential page writes.
func (d *Device) AttachFTL(f *FTL) {
	d.ftl = f
	d.mapper = newFileMapper(f)
}

// FTL returns the attached FTL (nil when running in fast accounting mode).
func (d *Device) FTL() *FTL { return d.ftl }

// Write submits an n-byte sequential write that cannot start before
// ready; done (optional) runs at completion. Returns the finish time.
func (d *Device) Write(ready time.Duration, n units.Bytes, done func()) time.Duration {
	d.hostWritten += n
	if d.mapper != nil {
		d.mapper.write(n)
	}
	dur := d.spec.WriteLatency + d.spec.SeqWrite.TimeFor(n)
	finish := d.writeQ.Submit(ready, dur, done)
	d.rec.Span(d.wT, spans.KindNVMe, -1, d.name, finish-dur, finish, n, 0)
	return finish
}

// Read submits an n-byte sequential read. Returns the finish time.
func (d *Device) Read(ready time.Duration, n units.Bytes, done func()) time.Duration {
	d.hostRead += n
	dur := d.spec.ReadLatency + d.spec.SeqRead.TimeFor(n)
	finish := d.readQ.Submit(ready, dur, done)
	d.rec.Span(d.rT, spans.KindNVMe, -1, d.name, finish-dur, finish, n, 0)
	return finish
}

// HostWritten returns cumulative host bytes written.
func (d *Device) HostWritten() units.Bytes { return d.hostWritten }

// HostRead returns cumulative host bytes read.
func (d *Device) HostRead() units.Bytes { return d.hostRead }

// AdvanceHostTraffic adds analytic deltas to the cumulative host byte
// counters without submitting queue work — the steady-state fast path's
// per-cycle accounting for extrapolated steps. FTL-attached devices are
// never extrapolated (page-accurate wear needs the real write stream), so
// the mapper is untouched here.
func (d *Device) AdvanceHostTraffic(written, read units.Bytes) {
	d.hostWritten += written
	d.hostRead += read
}

// WriteBusyUntil returns the write queue's backlog horizon.
func (d *Device) WriteBusyUntil() time.Duration { return d.writeQ.BusyUntil() }

// ReadBusyUntil returns the read queue's backlog horizon.
func (d *Device) ReadBusyUntil() time.Duration { return d.readQ.BusyUntil() }

// WriteBusyTime returns cumulative write-queue service time.
func (d *Device) WriteBusyTime() time.Duration { return d.writeQ.BusyTime() }

// ReadBusyTime returns cumulative read-queue service time.
func (d *Device) ReadBusyTime() time.Duration { return d.readQ.BusyTime() }

// fileMapper lays sequential writes onto the FTL's logical page space as a
// circular log with whole-extent trim-before-overwrite, matching how the
// tensor cache recycles offload files step after step.
type fileMapper struct {
	ftl  *FTL
	next int64
}

func newFileMapper(f *FTL) *fileMapper { return &fileMapper{ftl: f} }

func (m *fileMapper) write(n units.Bytes) {
	pageSize := m.ftl.Geometry().PageSize
	pages := int64((n + pageSize - 1) / pageSize)
	total := int64(m.ftl.LogicalPages())
	for pages > 0 {
		run := pages
		if m.next+run > total {
			run = total - m.next
		}
		// Trim the extent we are about to recycle, then rewrite it — the
		// offload file lifecycle (old step's tensors are dead by now).
		m.ftl.Trim(m.next, run)
		m.ftl.WriteRange(m.next, run)
		m.next += run
		if m.next >= total {
			m.next = 0
		}
		pages -= run
	}
}
