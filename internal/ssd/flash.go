package ssd

import (
	"fmt"

	"ssdtrain/internal/units"
)

// Geometry describes NAND flash organization. Pages are the program unit,
// blocks the erase unit — the mismatch that causes write amplification
// (§II-C).
type Geometry struct {
	PageSize       units.Bytes
	PagesPerBlock  int
	BlocksPerPlane int
	PlanesPerDie   int
	DiesPerChannel int
	Channels       int
	// OverProvision is the fraction of physical blocks reserved beyond the
	// advertised capacity for garbage collection headroom and wear
	// leveling (§II-C).
	OverProvision float64
	// PECycles is the program/erase budget per block at the rated
	// retention period.
	PECycles int
}

// SmallTestGeometry returns a geometry small enough to exhaustively
// exercise in unit tests while keeping realistic proportions.
func SmallTestGeometry() Geometry {
	return Geometry{
		PageSize:       16 * units.KiB,
		PagesPerBlock:  64,
		BlocksPerPlane: 64,
		PlanesPerDie:   2,
		DiesPerChannel: 2,
		Channels:       4,
		OverProvision:  0.07,
		PECycles:       3000,
	}
}

// TotalBlocks returns the number of physical erase blocks.
func (g Geometry) TotalBlocks() int {
	return g.BlocksPerPlane * g.PlanesPerDie * g.DiesPerChannel * g.Channels
}

// BlockBytes returns the byte size of one erase block.
func (g Geometry) BlockBytes() units.Bytes {
	return g.PageSize * units.Bytes(g.PagesPerBlock)
}

// PhysicalBytes returns raw media capacity.
func (g Geometry) PhysicalBytes() units.Bytes {
	return g.BlockBytes() * units.Bytes(g.TotalBlocks())
}

// UsableBytes returns the advertised capacity after over-provisioning.
func (g Geometry) UsableBytes() units.Bytes {
	return units.Bytes(float64(g.PhysicalBytes()) * (1 - g.OverProvision))
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.PageSize <= 0 || g.PagesPerBlock <= 0 || g.BlocksPerPlane <= 0 ||
		g.PlanesPerDie <= 0 || g.DiesPerChannel <= 0 || g.Channels <= 0 {
		return fmt.Errorf("ssd: geometry has non-positive dimension: %+v", g)
	}
	if g.OverProvision < 0 || g.OverProvision >= 0.5 {
		return fmt.Errorf("ssd: over-provision %v out of [0, 0.5)", g.OverProvision)
	}
	if g.PECycles <= 0 {
		return fmt.Errorf("ssd: PE cycle budget must be positive")
	}
	return nil
}
