package ssd

import (
	"fmt"

	"ssdtrain/internal/units"
)

const invalidPPA = -1

// blockState tracks one erase block.
type blockState struct {
	valid    int // live pages in the block
	writePtr int // next page to program (== PagesPerBlock when full)
	erases   int // PE cycles consumed
	pages    []int64
}

// FTL is a page-mapped, log-structured flash translation layer with greedy
// garbage collection and wear-aware victim selection. It exists to measure
// write amplification under SSDTrain's workload: the paper argues (§II-C)
// that large sequential tensor writes keep WAF near 1, well below the
// JESD rating workload's 2.5, and this model lets tests demonstrate both
// regimes.
type FTL struct {
	geo Geometry

	l2p    []int // logical page → physical page (block*ppb + slot)
	blocks []blockState
	free   []int // free block indices (LIFO)

	hostActive int // block accepting host writes
	gcActive   int // block accepting GC relocations

	// gcLowWater triggers collection when free blocks drop to it; two
	// blocks are always reserved so relocation can proceed.
	gcLowWater int

	hostPages  int64
	mediaPages int64
	erases     int64
}

// NewFTL builds an FTL over the geometry.
func NewFTL(geo Geometry) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	total := geo.TotalBlocks()
	if total < 4 {
		return nil, fmt.Errorf("ssd: geometry too small for FTL (%d blocks)", total)
	}
	usablePages := int(geo.UsableBytes() / geo.PageSize)
	f := &FTL{
		geo:        geo,
		l2p:        make([]int, usablePages),
		blocks:     make([]blockState, total),
		gcLowWater: 2,
	}
	for i := range f.l2p {
		f.l2p[i] = invalidPPA
	}
	for i := range f.blocks {
		f.blocks[i].pages = make([]int64, geo.PagesPerBlock)
		for j := range f.blocks[i].pages {
			f.blocks[i].pages[j] = -1
		}
	}
	// All blocks start free; pop two as the initial active blocks.
	for i := total - 1; i >= 0; i-- {
		f.free = append(f.free, i)
	}
	f.hostActive = f.popFree()
	f.gcActive = f.popFree()
	return f, nil
}

// Geometry returns the FTL's flash geometry.
func (f *FTL) Geometry() Geometry { return f.geo }

// LogicalPages returns the number of addressable logical pages.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

func (f *FTL) popFree() int {
	if len(f.free) == 0 {
		panic("ssd: FTL out of free blocks (over-provisioning exhausted)")
	}
	b := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	return b
}

// program places logical page lpn into the given active block, returning
// the possibly-rotated active block index.
func (f *FTL) program(active int, lpn int64) int {
	blk := &f.blocks[active]
	if blk.writePtr >= f.geo.PagesPerBlock {
		panic("ssd: programming a full block")
	}
	slot := blk.writePtr
	blk.writePtr++
	blk.valid++
	blk.pages[slot] = lpn
	f.l2p[lpn] = active*f.geo.PagesPerBlock + slot
	f.mediaPages++
	if blk.writePtr == f.geo.PagesPerBlock {
		return f.popFree()
	}
	return active
}

// invalidate drops the current mapping of lpn if any.
func (f *FTL) invalidate(lpn int64) {
	ppa := f.l2p[lpn]
	if ppa == invalidPPA {
		return
	}
	b := ppa / f.geo.PagesPerBlock
	slot := ppa % f.geo.PagesPerBlock
	f.blocks[b].valid--
	f.blocks[b].pages[slot] = -1
	f.l2p[lpn] = invalidPPA
}

// WritePage services a host write of one logical page.
func (f *FTL) WritePage(lpn int64) {
	if lpn < 0 || lpn >= int64(len(f.l2p)) {
		panic(fmt.Sprintf("ssd: logical page %d out of range", lpn))
	}
	f.hostPages++
	f.invalidate(lpn)
	f.hostActive = f.program(f.hostActive, lpn)
	f.maybeGC()
}

// WriteRange services a sequential host write of count pages from start.
func (f *FTL) WriteRange(start, count int64) {
	for i := int64(0); i < count; i++ {
		f.WritePage(start + i)
	}
}

// Trim invalidates count logical pages from start without writing; the
// tensor cache trims offload files once their activations are consumed,
// which is what keeps GC pressure (and thus WAF) low.
func (f *FTL) Trim(start, count int64) {
	for i := int64(0); i < count; i++ {
		lpn := start + i
		if lpn >= 0 && lpn < int64(len(f.l2p)) {
			f.invalidate(lpn)
		}
	}
	f.reclaimEmpty()
}

// reclaimEmpty erases fully invalid, fully written blocks eagerly.
func (f *FTL) reclaimEmpty() {
	for i := range f.blocks {
		if i == f.hostActive || i == f.gcActive {
			continue
		}
		blk := &f.blocks[i]
		if blk.writePtr == f.geo.PagesPerBlock && blk.valid == 0 {
			f.eraseBlock(i)
		}
	}
}

func (f *FTL) eraseBlock(i int) {
	blk := &f.blocks[i]
	blk.writePtr = 0
	blk.valid = 0
	blk.erases++
	for j := range blk.pages {
		blk.pages[j] = -1
	}
	f.erases++
	f.free = append(f.free, i)
}

// maybeGC runs greedy garbage collection while free blocks are scarce.
func (f *FTL) maybeGC() {
	for len(f.free) <= f.gcLowWater {
		victim := f.pickVictim()
		if victim < 0 {
			panic("ssd: no GC victim available; drive is over-full")
		}
		f.collect(victim)
	}
}

// pickVictim selects the full block with the fewest valid pages, breaking
// ties toward the least-worn block (wear leveling).
func (f *FTL) pickVictim() int {
	best := -1
	for i := range f.blocks {
		if i == f.hostActive || i == f.gcActive {
			continue
		}
		blk := &f.blocks[i]
		if blk.writePtr < f.geo.PagesPerBlock {
			continue // only full blocks are GC candidates
		}
		if best == -1 ||
			blk.valid < f.blocks[best].valid ||
			(blk.valid == f.blocks[best].valid && blk.erases < f.blocks[best].erases) {
			best = i
		}
	}
	return best
}

// collect relocates the victim's valid pages and erases it.
func (f *FTL) collect(victim int) {
	blk := &f.blocks[victim]
	for slot := 0; slot < f.geo.PagesPerBlock; slot++ {
		lpn := blk.pages[slot]
		if lpn < 0 {
			continue
		}
		// Relocation: invalidate old mapping implicitly by reprogramming.
		blk.valid--
		blk.pages[slot] = -1
		f.gcActive = f.program(f.gcActive, lpn)
	}
	f.eraseBlock(victim)
}

// WearStats summarizes media wear.
type WearStats struct {
	HostPages  int64
	MediaPages int64
	Erases     int64
	MaxPE      int
	MeanPE     float64
	// WAF is media pages programmed per host page written.
	WAF float64
}

// Stats returns the current wear statistics.
func (f *FTL) Stats() WearStats {
	s := WearStats{HostPages: f.hostPages, MediaPages: f.mediaPages, Erases: f.erases}
	total := 0
	for i := range f.blocks {
		e := f.blocks[i].erases
		total += e
		if e > s.MaxPE {
			s.MaxPE = e
		}
	}
	s.MeanPE = float64(total) / float64(len(f.blocks))
	if f.hostPages > 0 {
		s.WAF = float64(f.mediaPages) / float64(f.hostPages)
	}
	return s
}

// HostBytes returns cumulative host writes in bytes.
func (f *FTL) HostBytes() units.Bytes {
	return units.Bytes(f.hostPages) * f.geo.PageSize
}

// FreeBlocks returns the number of free erase blocks.
func (f *FTL) FreeBlocks() int { return len(f.free) }
