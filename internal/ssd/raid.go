package ssd

import (
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/units"
)

// Array is a RAID0 stripe set over identical devices, matching the
// testbed's two md RAID0 arrays (3× and 4× P5800X, Table II). Transfers
// are split into stripe-sized chunks distributed round-robin; the
// transfer completes when the slowest member finishes its share.
type Array struct {
	name    string
	eng     *sim.Engine
	devices []*Device
	// stripe is the chunk size (md's default is 512 KiB).
	stripe units.Bytes
	// rr is the round-robin cursor so successive transfers spread load.
	rr int
	// faults, when armed, reports which member is dead at a transfer's
	// ready time so its stripe share is redistributed onto a survivor.
	faults *faults.Controller
}

// NewArray builds a RAID0 array over the devices.
func NewArray(eng *sim.Engine, name string, stripe units.Bytes, devices ...*Device) *Array {
	if len(devices) == 0 {
		panic("ssd: array needs at least one device")
	}
	if stripe <= 0 {
		panic("ssd: stripe size must be positive")
	}
	return &Array{name: name, eng: eng, devices: devices, stripe: stripe}
}

// Name returns the array name (e.g. "/mnt/md1").
func (a *Array) Name() string { return a.name }

// Devices returns the member devices.
func (a *Array) Devices() []*Device { return a.devices }

// Reset rewinds the stripe round-robin cursor for reuse by a new
// simulation, so a replayed transfer sequence lands on the same member
// devices. Member devices are reset separately by their owner (they may
// need a rederated spec).
func (a *Array) Reset() { a.rr = 0 }

// Cursor returns the round-robin stripe cursor. The steady-state fast
// path folds it into the per-step signature: two steps only repeat when
// their transfers land on the same member devices, which requires the
// cursor to return to the same position each cycle.
func (a *Array) Cursor() int { return a.rr }

// SetFaults arms (or, with nil, disarms) fault queries for this array.
// While a member is dead its stripe shares fold onto the next surviving
// member; the aggregate slowdown is accounted by the owning tier, which
// derates transfer bandwidth by the controller's Factor.
func (a *Array) SetFaults(c *faults.Controller) { a.faults = c }

// redistribute folds a dead member's stripe share onto the next
// surviving device. The round-robin cursor advances exactly as in the
// healthy case, so the post-rebuild transfer sequence realigns with a
// fault-free run's member assignment.
func (a *Array) redistribute(ready time.Duration, shares []units.Bytes) {
	if a.faults == nil || len(a.devices) < 2 {
		return
	}
	dd := a.faults.DeadDeviceAt(ready)
	if dd < 0 || dd >= len(shares) || shares[dd] == 0 {
		return
	}
	shares[(dd+1)%len(shares)] += shares[dd]
	shares[dd] = 0
}

// AggregateWrite returns the sum of member sequential-write bandwidths,
// the array's headline rate.
func (a *Array) AggregateWrite() units.Bandwidth {
	var bw units.Bandwidth
	for _, d := range a.devices {
		bw += d.Spec().SeqWrite
	}
	return bw
}

// AggregateRead returns the sum of member sequential-read bandwidths.
func (a *Array) AggregateRead() units.Bandwidth {
	var bw units.Bandwidth
	for _, d := range a.devices {
		bw += d.Spec().SeqRead
	}
	return bw
}

// shares splits n bytes into per-device loads starting at the round-robin
// cursor.
func (a *Array) shares(n units.Bytes) []units.Bytes {
	out := make([]units.Bytes, len(a.devices))
	chunks := (n + a.stripe - 1) / a.stripe
	base := chunks / units.Bytes(len(a.devices))
	rem := int(chunks % units.Bytes(len(a.devices)))
	for i := range out {
		c := base
		if (i-a.rr+len(a.devices))%len(a.devices) < rem {
			c++
		}
		out[i] = c * a.stripe
	}
	// Trim overshoot on the last loaded device so shares sum to n.
	var sum units.Bytes
	for _, s := range out {
		sum += s
	}
	if over := sum - n; over > 0 {
		for i := len(out) - 1; i >= 0 && over > 0; i-- {
			cut := over
			if cut > out[i] {
				cut = out[i]
			}
			out[i] -= cut
			over -= cut
		}
	}
	a.rr = (a.rr + rem) % len(a.devices)
	return out
}

// Write stripes an n-byte write across members; done runs when the
// slowest member finishes. Returns the finish time.
func (a *Array) Write(ready time.Duration, n units.Bytes, done func()) time.Duration {
	var finish time.Duration
	shares := a.shares(n)
	a.redistribute(ready, shares)
	for i, share := range shares {
		if share <= 0 {
			continue
		}
		if f := a.devices[i].Write(ready, share, nil); f > finish {
			finish = f
		}
	}
	if finish < ready {
		finish = ready
	}
	if done != nil {
		a.eng.Schedule(finish, done)
	}
	return finish
}

// Read stripes an n-byte read across members. Returns the finish time.
func (a *Array) Read(ready time.Duration, n units.Bytes, done func()) time.Duration {
	var finish time.Duration
	shares := a.shares(n)
	a.redistribute(ready, shares)
	for i, share := range shares {
		if share <= 0 {
			continue
		}
		if f := a.devices[i].Read(ready, share, nil); f > finish {
			finish = f
		}
	}
	if finish < ready {
		finish = ready
	}
	if done != nil {
		a.eng.Schedule(finish, done)
	}
	return finish
}

// HostWritten sums member write counters.
func (a *Array) HostWritten() units.Bytes {
	var n units.Bytes
	for _, d := range a.devices {
		n += d.HostWritten()
	}
	return n
}

// HostRead sums member read counters.
func (a *Array) HostRead() units.Bytes {
	var n units.Bytes
	for _, d := range a.devices {
		n += d.HostRead()
	}
	return n
}
