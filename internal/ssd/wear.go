package ssd

import (
	"time"

	"ssdtrain/internal/units"
)

// ArrayWear accumulates host writes against a shared drive array's
// endurance budget — the multi-tenant extension of the §III-D model. The
// paper's t_life formula assumes one training job owns its drives; in a
// fleet, several co-located jobs write to one node-level array, so
// lifespan must be projected from the aggregate write pressure the array
// actually observed over a measurement window. EnduranceModel's
// DrivesPerGPU field is reused as drives-per-array here: the model only
// cares how many drives back one write budget.
type ArrayWear struct {
	Model EnduranceModel
	// written accumulates fractional bytes: fleet simulations accrue
	// writes as rate × dt, which is not generally whole bytes.
	written float64
	span    time.Duration
}

// NewArrayWear builds a wear ledger for a node-level array of the given
// drives, keeping the paper's workload assumptions (sequential offload
// pattern, WAF 1, 1-day retention relaxation).
func NewArrayWear(spec Spec, drives int) *ArrayWear {
	m := DefaultEnduranceModel()
	m.Spec = spec
	m.DrivesPerGPU = drives
	return &ArrayWear{Model: m}
}

// Record adds host writes to the ledger.
func (w *ArrayWear) Record(bytes float64) {
	if bytes > 0 {
		w.written += bytes
	}
}

// Extend grows the observation window to cover the given instant; the
// window never shrinks.
func (w *ArrayWear) Extend(to time.Duration) {
	if to > w.span {
		w.span = to
	}
}

// Written returns the accumulated host writes.
func (w *ArrayWear) Written() units.Bytes { return units.Bytes(w.written) }

// Span returns the observation window.
func (w *ArrayWear) Span() time.Duration { return w.span }

// WearFraction returns the share of the array's lifetime write budget the
// observed writes consumed.
func (w *ArrayWear) WearFraction() float64 {
	budget := w.Model.HostWriteBudget()
	if budget <= 0 {
		return 0
	}
	return w.written / budget
}

// MeanWriteBandwidth returns the average write pressure over the window.
func (w *ArrayWear) MeanWriteBandwidth() units.Bandwidth {
	if w.span <= 0 {
		return 0
	}
	return units.Bandwidth(w.written / w.span.Seconds())
}

// ProjectedYears extrapolates the window's write pressure to the array's
// end of life, in years (the Fig 5 unit). An idle array reports a
// century, matching EnduranceModel.Lifespan's convention.
func (w *ArrayWear) ProjectedYears() float64 {
	f := w.WearFraction()
	if f <= 0 || w.span <= 0 {
		return 100
	}
	years := w.span.Seconds() / f / secondsPerYear
	if years > 100 {
		return 100
	}
	return years
}

// ProjectedLifespan is ProjectedYears as a duration, capped at a century
// to keep the arithmetic inside time.Duration's range.
func (w *ArrayWear) ProjectedLifespan() time.Duration {
	return time.Duration(w.ProjectedYears() * secondsPerYear * float64(time.Second))
}
