package ssd

import (
	"fmt"

	"ssdtrain/internal/units"
)

// BlockStore is the byte-accurate file layer the offloaders write tensor
// payloads into — the analogue of the paper's "/mnt/md1/t1.pt" files. It
// supports both payload-backed files (for round-trip verification tests)
// and size-only files (for timing-only experiments where materializing
// tens of gigabytes would be waste). The store is generic in its key so
// offloaders can index files by their compact tensor IDs directly instead
// of formatting path strings on the simulation hot path; rendering the
// paper-style "/mnt/md1/t1.pt" name is deferred to diagnostics.
type BlockStore[K comparable] struct {
	files map[K]*storedFile
	// free recycles storedFile boxes across the write/delete churn of a
	// training step (every offload file is written and unlinked once per
	// step), so steady-state stores allocate nothing.
	free []*storedFile

	written units.Bytes
	read    units.Bytes
	deleted units.Bytes
	used    units.Bytes
	peak    units.Bytes
}

type storedFile struct {
	size units.Bytes
	data []byte // nil for size-only files
}

// NewBlockStore returns an empty store.
func NewBlockStore[K comparable]() *BlockStore[K] {
	return &BlockStore[K]{files: make(map[K]*storedFile)}
}

// WriteFile stores a payload-backed file, overwriting any previous file at
// the path. The payload is copied.
func (b *BlockStore[K]) WriteFile(path K, data []byte) {
	b.remove(path)
	cp := make([]byte, len(data))
	copy(cp, data)
	f := b.newFile()
	f.size, f.data = units.Bytes(len(data)), cp
	b.put(path, f)
}

// WriteSize stores a size-only file (no payload).
func (b *BlockStore[K]) WriteSize(path K, n units.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("ssd: negative file size %d", n))
	}
	b.remove(path)
	f := b.newFile()
	f.size = n
	b.put(path, f)
}

// newFile pops a recycled file box or allocates one.
func (b *BlockStore[K]) newFile() *storedFile {
	if n := len(b.free); n > 0 {
		f := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return f
	}
	return &storedFile{}
}

func (b *BlockStore[K]) put(path K, f *storedFile) {
	b.files[path] = f
	b.written += f.size
	b.used += f.size
	if b.used > b.peak {
		b.peak = b.used
	}
}

func (b *BlockStore[K]) remove(path K) {
	if old, ok := b.files[path]; ok {
		b.used -= old.size
		b.deleted += old.size
		delete(b.files, path)
		old.size, old.data = 0, nil
		b.free = append(b.free, old)
	}
}

// Reset empties the store and zeroes all counters for reuse by a new
// simulation, returning live file boxes to the free pool; map buckets and
// pool capacity are retained so a replayed workload allocates nothing.
func (b *BlockStore[K]) Reset() {
	for path, f := range b.files {
		delete(b.files, path)
		f.size, f.data = 0, nil
		b.free = append(b.free, f)
	}
	b.written, b.read, b.deleted, b.used, b.peak = 0, 0, 0, 0, 0
}

// ReadFile returns a copy of a payload-backed file's bytes. Reading a
// size-only file returns nil with ok=true; reading a missing path returns
// ok=false.
func (b *BlockStore[K]) ReadFile(path K) (data []byte, ok bool) {
	f, ok := b.files[path]
	if !ok {
		return nil, false
	}
	b.read += f.size
	if f.data == nil {
		return nil, true
	}
	cp := make([]byte, len(f.data))
	copy(cp, f.data)
	return cp, true
}

// Size returns a file's size, with ok=false for missing paths.
func (b *BlockStore[K]) Size(path K) (units.Bytes, bool) {
	f, ok := b.files[path]
	if !ok {
		return 0, false
	}
	return f.size, true
}

// Delete removes a file; deleting a missing path is a no-op (idempotent
// cleanup, like unlink of a consumed offload file).
func (b *BlockStore[K]) Delete(path K) { b.remove(path) }

// Used returns the bytes currently stored.
func (b *BlockStore[K]) Used() units.Bytes { return b.used }

// PeakUsed returns the high-water mark of stored bytes — the "max
// activations size per GPU" measurement of Fig 5's diamonds.
func (b *BlockStore[K]) PeakUsed() units.Bytes { return b.peak }

// Written returns cumulative bytes written.
func (b *BlockStore[K]) Written() units.Bytes { return b.written }

// Read returns cumulative bytes read.
func (b *BlockStore[K]) Read() units.Bytes { return b.read }

// Deleted returns cumulative bytes deleted.
func (b *BlockStore[K]) Deleted() units.Bytes { return b.deleted }

// AdvanceTraffic adds analytic deltas to the cumulative traffic counters
// without touching any file. The steady-state fast path uses it to account
// extrapolated training cycles, whose per-cycle file churn is net-zero by
// construction (used and peak are unchanged).
func (b *BlockStore[K]) AdvanceTraffic(written, read, deleted units.Bytes) {
	b.written += written
	b.read += read
	b.deleted += deleted
}

// Files returns the stored keys in unspecified order; callers needing a
// stable listing sort the result.
func (b *BlockStore[K]) Files() []K {
	paths := make([]K, 0, len(b.files))
	for p := range b.files {
		paths = append(paths, p)
	}
	return paths
}

// Count returns the number of stored files.
func (b *BlockStore[K]) Count() int { return len(b.files) }
