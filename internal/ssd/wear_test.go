package ssd

import (
	"math"
	"testing"
	"time"

	"ssdtrain/internal/units"
)

func TestArrayWearProjection(t *testing.T) {
	w := NewArrayWear(Samsung980Pro1TB(), 8)
	if w.Model.DrivesPerGPU != 8 {
		t.Fatalf("drives = %d, want 8", w.Model.DrivesPerGPU)
	}
	// Write 1% of the budget over one hour: projected life is 100 hours.
	budget := float64(w.Model.LifetimeHostWrites())
	w.Record(budget / 100)
	w.Extend(time.Hour)
	if got := w.WearFraction(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("wear fraction = %v, want 0.01", got)
	}
	wantYears := (100 * time.Hour).Seconds() / secondsPerYear
	if got := w.ProjectedYears(); math.Abs(got-wantYears) > 1e-9 {
		t.Errorf("projected years = %v, want %v", got, wantYears)
	}
	if got := w.ProjectedLifespan().Round(time.Minute); got != 100*time.Hour {
		t.Errorf("projected lifespan = %v, want 100h", got)
	}
	if got, want := w.MeanWriteBandwidth(), units.Bandwidth(budget/100/3600); math.Abs(float64(got-want)) > 1 {
		t.Errorf("mean write bandwidth = %v, want %v", got, want)
	}
}

func TestArrayWearIdleAndCaps(t *testing.T) {
	w := NewArrayWear(Samsung980Pro1TB(), 4)
	w.Extend(time.Hour)
	if got := w.ProjectedYears(); got != 100 {
		t.Errorf("idle array projects %v years, want the 100-year cap", got)
	}
	w.Record(-5) // negative writes are ignored
	if w.Written() != 0 {
		t.Errorf("negative record changed the ledger: %v", w.Written())
	}
	// A vanishing write pressure caps at a century instead of overflowing
	// time.Duration.
	w.Record(1)
	if got := w.ProjectedYears(); got != 100 {
		t.Errorf("near-idle array projects %v years, want cap", got)
	}
	if w.ProjectedLifespan() <= 0 {
		t.Error("capped lifespan overflowed")
	}
	// The window never shrinks.
	w.Extend(time.Minute)
	if w.Span() != time.Hour {
		t.Errorf("span shrank to %v", w.Span())
	}
}

func TestArrayWearMoreTenantsLessLife(t *testing.T) {
	solo := NewArrayWear(Samsung980Pro1TB(), 8)
	crowd := NewArrayWear(Samsung980Pro1TB(), 8)
	solo.Record(1e12)
	crowd.Record(4e12)
	solo.Extend(time.Hour)
	crowd.Extend(time.Hour)
	if crowd.ProjectedYears() >= solo.ProjectedYears() {
		t.Errorf("4× write pressure did not shorten life: %v vs %v",
			crowd.ProjectedYears(), solo.ProjectedYears())
	}
}
