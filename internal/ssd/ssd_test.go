package ssd

import (
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/units"
)

func TestSpecs(t *testing.T) {
	p := IntelP5800X16TB()
	if p.Media != XPoint || p.JESDWAF != 1.0 {
		t.Errorf("P5800X spec wrong: %+v", p)
	}
	// 100 DWPD over 5 years.
	if d := p.DWPD(5); d < 99 || d > 101 {
		t.Errorf("P5800X DWPD = %v", d)
	}
	s := Samsung980Pro1TB()
	if s.RatedTBW != 600*units.TB || s.Media != NAND {
		t.Errorf("980 PRO spec wrong: %+v", s)
	}
	// Consumer TLC: ~0.3 DWPD over 5 years.
	if d := s.DWPD(5); d < 0.25 || d > 0.4 {
		t.Errorf("980 PRO DWPD = %v", d)
	}
	if p.PricePerPBW() <= 0 || s.PricePerPBW() <= 0 {
		t.Error("price per PBW should be positive")
	}
}

func TestGeometry(t *testing.T) {
	g := SmallTestGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalBlocks() != 64*2*2*4 {
		t.Errorf("blocks = %d", g.TotalBlocks())
	}
	if g.BlockBytes() != 16*units.KiB*64 {
		t.Errorf("block bytes = %v", g.BlockBytes())
	}
	if g.UsableBytes() >= g.PhysicalBytes() {
		t.Error("over-provisioning missing")
	}
	bad := g
	bad.OverProvision = 0.9
	if bad.Validate() == nil {
		t.Error("bad over-provision accepted")
	}
}

func TestFTLSequentialWAFNearOne(t *testing.T) {
	f, err := NewFTL(SmallTestGeometry())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(f.LogicalPages())
	extent := total / 4
	for round := 0; round < 30; round++ {
		start := (int64(round) % 3) * extent
		f.Trim(start, extent)
		f.WriteRange(start, extent)
	}
	st := f.Stats()
	if st.WAF > 1.05 {
		t.Errorf("sequential+trim WAF = %.3f, want ≈ 1 (paper §II-C)", st.WAF)
	}
}

func TestFTLRandomWAFAboveOne(t *testing.T) {
	f, err := NewFTL(SmallTestGeometry())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(f.LogicalPages())
	fill := total * 9 / 10
	f.WriteRange(0, fill)
	x := uint64(12345)
	for i := int64(0); i < total*4; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f.WritePage(int64(x % uint64(fill)))
	}
	st := f.Stats()
	if st.WAF < 1.5 {
		t.Errorf("random-overwrite WAF = %.3f, want well above 1", st.WAF)
	}
	if st.Erases == 0 {
		t.Error("no garbage collection happened")
	}
}

func TestFTLWearLeveling(t *testing.T) {
	f, err := NewFTL(SmallTestGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a small logical range; wear should still spread.
	hot := int64(f.Geometry().PagesPerBlock) * 4
	for i := 0; i < 200; i++ {
		f.WriteRange(0, hot)
	}
	st := f.Stats()
	if st.MaxPE > int(st.MeanPE*20+10) {
		t.Errorf("wear concentrated: max PE %d vs mean %.1f", st.MaxPE, st.MeanPE)
	}
}

func TestFTLHostBytes(t *testing.T) {
	f, _ := NewFTL(SmallTestGeometry())
	f.WriteRange(0, 10)
	want := units.Bytes(10) * f.Geometry().PageSize
	if f.HostBytes() != want {
		t.Errorf("host bytes = %v, want %v", f.HostBytes(), want)
	}
}

// Property: after any mix of writes and trims, the sum of per-block valid
// counters equals the number of live logical pages.
func TestFTLValidAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ftl, err := NewFTL(SmallTestGeometry())
		if err != nil {
			return false
		}
		total := int64(ftl.LogicalPages())
		live := make(map[int64]bool)
		for _, op := range ops {
			lpn := int64(op) % total
			if op%3 == 0 {
				ftl.Trim(lpn, 1)
				delete(live, lpn)
			} else {
				ftl.WritePage(lpn)
				live[lpn] = true
			}
		}
		valid := 0
		for i := range ftl.blocks {
			valid += ftl.blocks[i].valid
		}
		return valid == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnduranceModel(t *testing.T) {
	m := DefaultEnduranceModel()
	// 600 TB × 4 drives × 2.5 (JESD WAF vs sequential) × 86 (retention).
	want := units.Bytes(600e12 * 4 * 2.5 * 86)
	if got := m.LifetimeHostWrites(); got != want {
		t.Errorf("endurance budget = %v, want %v", got, want)
	}
	// Hand-computed lifespan: 10 GB per 1 s step.
	years := m.LifespanYears(10*units.GB, time.Second)
	wantYears := float64(want) / 10e9 / (365.25 * 24 * 3600)
	if diff := years/wantYears - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("lifespan %v years, want %v", years, wantYears)
	}
	// No writes → effectively unlimited.
	if m.LifespanYears(0, time.Second) < 99 {
		t.Error("zero writes should report a century")
	}
}

func TestRequiredWriteBandwidth(t *testing.T) {
	// 10 GB over half of a 2 s step = 10 GB/s.
	bw := RequiredWriteBandwidth(10*units.GB, 2*time.Second)
	if bw != 10*units.GBps {
		t.Errorf("required bw = %v", bw)
	}
}

func TestDeviceQueueing(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "nvme0", IntelP5800X16TB())
	f1 := d.Write(0, units.Bytes(6.1e9), nil) // one second of writes
	if f1 < time.Second || f1 > time.Second+time.Millisecond {
		t.Errorf("write finish = %v", f1)
	}
	// Reads do not queue behind writes.
	r1 := d.Read(0, units.Bytes(7.2e9), nil)
	if r1 > time.Second+time.Millisecond {
		t.Errorf("read queued behind write: %v", r1)
	}
	if d.HostWritten() != units.Bytes(6.1e9) || d.HostRead() != units.Bytes(7.2e9) {
		t.Error("byte accounting wrong")
	}
}

func TestDeviceFTLMirroring(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "nvme0", IntelP5800X16TB())
	ftl, _ := NewFTL(SmallTestGeometry())
	d.AttachFTL(ftl)
	// Write more than the logical space; the circular log must wrap and
	// keep WAF ≈ 1 thanks to trim-before-overwrite.
	step := units.Bytes(ftl.LogicalPages()) * ftl.Geometry().PageSize / 3
	for i := 0; i < 10; i++ {
		d.Write(0, step, nil)
	}
	st := ftl.Stats()
	if st.WAF > 1.05 {
		t.Errorf("device-mirrored WAF = %.3f", st.WAF)
	}
}

func TestArrayStriping(t *testing.T) {
	eng := sim.NewEngine()
	devs := []*Device{
		NewDevice(eng, "d0", IntelP5800X16TB()),
		NewDevice(eng, "d1", IntelP5800X16TB()),
		NewDevice(eng, "d2", IntelP5800X16TB()),
		NewDevice(eng, "d3", IntelP5800X16TB()),
	}
	a := NewArray(eng, "/mnt/md1", 512*units.KiB, devs...)
	if a.AggregateWrite() != 4*6.1*units.GBps {
		t.Errorf("aggregate write = %v", a.AggregateWrite())
	}
	n := units.Bytes(4 * units.GB)
	fin := a.Write(0, n, nil)
	// Striped across 4 devices: ≈ size/(4·6.1GB/s).
	want := units.Bandwidth(4 * 6.1 * units.GBps).TimeFor(n)
	if fin < want || fin > want+10*time.Millisecond {
		t.Errorf("array write = %v, want ≈ %v", fin, want)
	}
	// Shares conserve bytes.
	if a.HostWritten() != n {
		t.Errorf("striped bytes = %v, want %v", a.HostWritten(), n)
	}
	// Each member got roughly a quarter.
	for _, d := range devs {
		q := float64(d.HostWritten()) / float64(n)
		if q < 0.2 || q > 0.3 {
			t.Errorf("member share = %.3f", q)
		}
	}
}

// Property: array striping conserves bytes for any transfer size.
func TestArraySharesConserveProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		eng := sim.NewEngine()
		devs := []*Device{
			NewDevice(eng, "d0", IntelP5800X16TB()),
			NewDevice(eng, "d1", IntelP5800X16TB()),
			NewDevice(eng, "d2", IntelP5800X16TB()),
		}
		a := NewArray(eng, "md", 128*units.KiB, devs...)
		var total units.Bytes
		for _, sz := range sizes {
			n := units.Bytes(sz%(1<<24)) + 1
			a.Write(0, n, nil)
			total += n
		}
		return a.HostWritten() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockStore(t *testing.T) {
	b := NewBlockStore[string]()
	data := []byte("activation tensor payload")
	b.WriteFile("/mnt/md1/t1.pt", data)
	got, ok := b.ReadFile("/mnt/md1/t1.pt")
	if !ok || string(got) != string(data) {
		t.Fatalf("round trip failed: %q %v", got, ok)
	}
	// Mutating the returned slice must not corrupt the store.
	got[0] = 'X'
	again, _ := b.ReadFile("/mnt/md1/t1.pt")
	if string(again) != string(data) {
		t.Error("store aliases caller buffers")
	}
	b.WriteSize("/mnt/md1/t2.pt", 1000)
	if sz, ok := b.Size("/mnt/md1/t2.pt"); !ok || sz != 1000 {
		t.Errorf("size-only file: %v %v", sz, ok)
	}
	if d, ok := b.ReadFile("/mnt/md1/t2.pt"); !ok || d != nil {
		t.Error("size-only read should return nil payload")
	}
	if b.Used() != units.Bytes(len(data))+1000 {
		t.Errorf("used = %v", b.Used())
	}
	if b.PeakUsed() != b.Used() {
		t.Errorf("peak = %v", b.PeakUsed())
	}
	b.Delete("/mnt/md1/t1.pt")
	b.Delete("/mnt/md1/t1.pt") // idempotent
	if b.Count() != 1 {
		t.Errorf("count = %d", b.Count())
	}
	if b.PeakUsed() <= b.Used() {
		t.Error("peak should exceed current after delete")
	}
	// Overwrite replaces, not accumulates.
	b.WriteSize("/mnt/md1/t2.pt", 500)
	if b.Used() != 500 {
		t.Errorf("used after overwrite = %v", b.Used())
	}
	if files := b.Files(); len(files) != 1 || files[0] != "/mnt/md1/t2.pt" {
		t.Errorf("files = %v", files)
	}
	if _, ok := b.ReadFile("missing"); ok {
		t.Error("missing file read ok")
	}
}
