package ssd

import (
	"math"
	"time"

	"ssdtrain/internal/units"
)

// secondsPerYear uses the Julian year.
const secondsPerYear = 365.25 * 24 * 3600

// EnduranceModel projects SSD lifespan under an activation-offloading
// workload, implementing §III-D:
//
//	t_life = S_endurance · t_step / S_activations
//
// where S_endurance is the lifetime host-write budget after adjusting the
// JESD rating for (a) the sequential, trim-friendly write pattern of
// activation offloading (WAF ≈ 1 instead of the rating workload's 2.5)
// and (b) relaxed data retention — activations live for one training step,
// not three years, and NAND endures ~86× the PE cycles at 1-day retention
// (§III-D, refs [55]-[58]).
type EnduranceModel struct {
	Spec Spec
	// DrivesPerGPU is how many drives serve one GPU (the paper assumes 4).
	DrivesPerGPU int
	// WorkloadWAF is the write amplification measured or assumed for the
	// offload workload; sequential large writes with whole-file trims give
	// ~1.0 (validated by the FTL model's tests).
	WorkloadWAF float64
	// RetentionFactor multiplies PE-cycle budget for relaxed retention;
	// 86 corresponds to relaxing 3 years → 1 day.
	RetentionFactor float64
}

// DefaultEnduranceModel returns the paper's Fig 5 assumptions: four
// Samsung 980 PRO 1TB per GPU, JESD WAF 2.5 vs workload WAF 1, and
// 1-day retention relaxation.
func DefaultEnduranceModel() EnduranceModel {
	return EnduranceModel{
		Spec:            Samsung980Pro1TB(),
		DrivesPerGPU:    4,
		WorkloadWAF:     1.0,
		RetentionFactor: 86,
	}
}

// HostWriteBudget returns S_endurance in float64 bytes. The float form
// exists because the budget can exceed units.Bytes' int64 range — the
// P5800X's 292 PB rating × 86 retention relaxation × 4 drives is ~1e20 —
// and consumers doing ratio arithmetic (wear fractions, trigger
// thresholds, lifespan projections) must not lose the true magnitude to
// integer truncation.
func (m EnduranceModel) HostWriteBudget() float64 {
	if m.WorkloadWAF <= 0 {
		panic("ssd: workload WAF must be positive")
	}
	perDrive := float64(m.Spec.RatedTBW)
	// The rating's media-write budget is RatedTBW × JESDWAF; our workload
	// turns that budget into RatedTBW × JESDWAF / WorkloadWAF host writes.
	perDrive *= m.Spec.JESDWAF / m.WorkloadWAF
	// Retention relaxation multiplies the PE budget itself.
	if m.RetentionFactor > 0 {
		perDrive *= m.RetentionFactor
	}
	return perDrive * float64(m.DrivesPerGPU)
}

// LifetimeHostWrites returns S_endurance: the host-write budget per GPU
// under the workload assumptions, saturated at the units.Bytes ceiling
// (conversion of an over-range budget used to overflow to a negative
// value, silently disabling wear-triggered faults for Optane-class
// geometries).
func (m EnduranceModel) LifetimeHostWrites() units.Bytes {
	f := m.HostWriteBudget()
	if f >= math.MaxInt64 {
		return units.Bytes(math.MaxInt64)
	}
	return units.Bytes(f)
}

// Lifespan projects drive lifetime given per-step activation volume and
// step time (the paper's t_life formula).
func (m EnduranceModel) Lifespan(activationsPerStep units.Bytes, stepTime time.Duration) time.Duration {
	if activationsPerStep <= 0 {
		// No writes: drives last indefinitely; report a century to keep
		// arithmetic finite.
		return time.Duration(100 * secondsPerYear * float64(time.Second))
	}
	steps := m.HostWriteBudget() / float64(activationsPerStep)
	return time.Duration(steps * float64(stepTime))
}

// LifespanYears is Lifespan expressed in years, the Fig 5 unit.
func (m EnduranceModel) LifespanYears(activationsPerStep units.Bytes, stepTime time.Duration) float64 {
	return m.Lifespan(activationsPerStep, stepTime).Seconds() / secondsPerYear
}

// RequiredWriteBandwidth returns the per-GPU PCIe write bandwidth needed
// to drain one step's activations within half the step time (§III-D: "the
// total amount of activations divided by half the training time" — the
// forward half produces them all).
func RequiredWriteBandwidth(activationsPerStep units.Bytes, stepTime time.Duration) units.Bandwidth {
	if stepTime <= 0 {
		return 0
	}
	half := stepTime / 2
	return units.BandwidthOf(activationsPerStep, half)
}

// Years converts a duration to years.
func Years(d time.Duration) float64 { return d.Seconds() / secondsPerYear }
