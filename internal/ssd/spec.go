// Package ssd models the NVMe offload target: drive specifications,
// flash-translation-layer behaviour with write-amplification accounting,
// the endurance/lifespan model of §II-C and §III-D, RAID0 striping, and a
// byte-accurate block store used to verify offload round-trips. The
// endurance model is a first-class deliverable: the paper's viability
// argument for activation offloading rests on it (Fig 5).
package ssd

import (
	"time"

	"ssdtrain/internal/units"
)

// MediaKind distinguishes flash families with different write behaviour.
type MediaKind uint8

// Media kinds.
const (
	// NAND flash erases in blocks and garbage-collects, so it suffers
	// write amplification under random workloads.
	NAND MediaKind = iota
	// XPoint (Intel Optane) writes in place; WAF is ~1 regardless of
	// access pattern. The paper's testbed drives (P5800X) are XPoint.
	XPoint
)

// String names the media kind.
func (m MediaKind) String() string {
	if m == XPoint {
		return "3D-XPoint"
	}
	return "NAND"
}

// Spec describes one SSD model.
type Spec struct {
	Name     string
	Media    MediaKind
	Capacity units.Bytes
	// SeqWrite and SeqRead are sustained sequential bandwidths; activation
	// offloading issues exactly this pattern (§II-C: "writes are large and
	// sequential as each tensor ... is easily hundreds of MBs").
	SeqWrite units.Bandwidth
	SeqRead  units.Bandwidth
	// WriteLatency and ReadLatency are fixed per-command latencies.
	WriteLatency time.Duration
	ReadLatency  time.Duration
	// RatedTBW is lifetime host writes under the JESD218 rating method
	// (random writes after tough preconditioning).
	RatedTBW units.Bytes
	// JESDWAF is the write amplification implied by the JESD rating
	// workload; the paper assumes 2.5.
	JESDWAF float64
	// PricePerUnit (USD) feeds the paper's cost analysis (§IV-D).
	PricePerUnit float64
}

// IntelP5800X16TB is the testbed drive (Table II): Intel Optane P5800X
// 1.6 TB. Endurance rating is 100 DWPD over 5 years.
func IntelP5800X16TB() Spec {
	capacity := units.Bytes(1.6e12)
	return Spec{
		Name:         "Intel-Optane-P5800X-1.6TB",
		Media:        XPoint,
		Capacity:     capacity,
		SeqWrite:     6.1 * units.GBps,
		SeqRead:      7.2 * units.GBps,
		WriteLatency: 5 * time.Microsecond,
		ReadLatency:  5 * time.Microsecond,
		// 100 DWPD × 1.6 TB × 365 × 5 years = 292 PB.
		RatedTBW: units.Bytes(100 * 1.6e12 * 365 * 5),
		// Optane's rating method is not JESD-preconditioned NAND, and its
		// in-place media keeps WAF at 1 for any pattern.
		JESDWAF:      1.0,
		PricePerUnit: 3700,
	}
}

// Samsung980Pro1TB is the drive used for the paper's large-scale viability
// projection (§III-D: "assume four Samsung 980 PRO 1TB for each GPU").
func Samsung980Pro1TB() Spec {
	return Spec{
		Name:         "Samsung-980PRO-1TB",
		Media:        NAND,
		Capacity:     1 * units.TB,
		SeqWrite:     5.0 * units.GBps,
		SeqRead:      7.0 * units.GBps,
		WriteLatency: 20 * time.Microsecond,
		ReadLatency:  50 * time.Microsecond,
		RatedTBW:     600 * units.TB,
		JESDWAF:      2.5,
		PricePerUnit: 90,
	}
}

// DWPD returns the drive-writes-per-day implied by the rating over the
// given warranty period.
func (s Spec) DWPD(warrantyYears float64) float64 {
	if warrantyYears <= 0 || s.Capacity <= 0 {
		return 0
	}
	return float64(s.RatedTBW) / (float64(s.Capacity) * warrantyYears * 365)
}

// PricePerPBW returns price per petabyte written, the paper's cost metric
// for comparing the Optane testbed drives with mainstream TLC (§IV-D).
func (s Spec) PricePerPBW() float64 {
	if s.RatedTBW <= 0 {
		return 0
	}
	return s.PricePerUnit / (float64(s.RatedTBW) / float64(units.PB))
}
