// Fleet: simulate a small training cluster where co-located jobs share
// each node's NVMe array — eight pinned-budget jobs packed onto two
// nodes under FIFO and SJF — then measure one of those jobs through the
// public run API at an exclusive vs. quarter array share, showing the
// contention effect the fleet subsystem models: pinned-budget jobs
// dilate when their bandwidth share thins.
package main

import (
	"fmt"
	"log"

	"ssdtrain"
)

func main() {
	node := ssdtrain.DefaultFleetNode()
	cluster := ssdtrain.FleetClusterSpec{Nodes: 2, Node: node}

	// A memory-constrained job: the budget pins every activation to the
	// array, so a thinner bandwidth share stretches its step time.
	pinned := ssdtrain.RunConfig{
		Model:           ssdtrain.PaperConfig(ssdtrain.BERT, 8192, 4, 8),
		Strategy:        ssdtrain.StrategySSDTrain,
		Budget:          1 << 62,
		NoForwarding:    true,
		KeepLastModules: -1,
	}
	var jobs []ssdtrain.FleetJob
	for i := 0; i < 8; i++ {
		jobs = append(jobs, ssdtrain.FleetJob{
			ID:    i,
			Name:  fmt.Sprintf("pinned-%d", i),
			Run:   pinned,
			GPUs:  1,
			Steps: 30,
		})
	}

	reports, err := ssdtrain.FleetPolicySweep(cluster, jobs,
		[]ssdtrain.FleetPolicy{ssdtrain.FleetFIFO, ssdtrain.FleetSJF}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r.Summary())
	}
	fmt.Println(ssdtrain.FleetCompareTable(reports))

	// The contended bandwidth injection is also part of the public run
	// API: the same job measured exclusively vs. at a quarter share.
	for _, share := range []float64{1, 0.25} {
		run := pinned
		run.SSDBandwidthShare = share
		run.GPU = node.GPU
		run.SSD = node.SSD
		res, err := ssdtrain.Train(run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("share %.2f: step %v, stall %v\n",
			share, res.StepTime(), res.Measured.Stats.ComputeStall)
	}
}
