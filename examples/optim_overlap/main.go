// Example optim_overlap demonstrates the optimizer-offload strategy and
// the grouped Spec configuration form. It offloads Adam's FP32 states
// and the gradients to the DRAM/NVMe hierarchy (à la ZeRO-Offload) and
// compares the two step schedules: the classic post-backward barrier
// ("sync") against GreedySnake's trick of draining the optimizer
// pipeline into the next step's forward pass ("overlap"). The crossover
// is the point of the figure — overlap wins while the working set is
// DRAM-resident (the update work hides under fwd(t+1)), and loses once
// the states spill to NVMe, where step t's parameter loads contend with
// step t+1's gradient stores on the host link.
package main

import (
	"fmt"
	"log"
	"time"

	"ssdtrain"
)

func main() {
	model := ssdtrain.PaperConfig(ssdtrain.BERT, 2048, 24, 8)

	// The grouped Spec form: each concern in its own block, the
	// optimizer family selected by Optimizer.Offload rather than a
	// strategy string.
	spec := ssdtrain.Spec{
		Model: model,
		Offload: ssdtrain.OffloadSpec{
			DRAMCapacity: 1 << 30,
		},
		Optimizer: ssdtrain.OptimizerSpec{
			Kind:     "adam",
			Offload:  true,
			Schedule: ssdtrain.ScheduleSync,
		},
		Run: ssdtrain.RunSpec{MicroBatches: 2},
	}
	sync, err := ssdtrain.TrainSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	spec.Optimizer.Schedule = ssdtrain.ScheduleOverlap
	overlap, err := ssdtrain.TrainSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %s\n", model)
	fmt.Printf("optimizer working set: %v (%v in DRAM, %v on NVMe)\n\n",
		sync.Optim.StateBytes, sync.Optim.DRAMResident, sync.Optim.NVMeResident)
	fmt.Printf("%-28s %12s %12s\n", "", "sync", "overlap")
	fmt.Printf("%-28s %12v %12v\n", "step time",
		sync.StepTime().Round(time.Millisecond), overlap.StepTime().Round(time.Millisecond))
	fmt.Printf("%-28s %12v %12v\n", "update engine busy",
		sync.Optim.UpdateBusy.Round(time.Millisecond), overlap.Optim.UpdateBusy.Round(time.Millisecond))
	gain := float64(sync.StepTime())/float64(overlap.StepTime()) - 1
	fmt.Printf("\noverlap gain at this grant: %+.1f%%\n\n", gain*100)

	// The full figure: residency fractions of the working set under both
	// schedules, against the activation-offload baseline.
	sweep, err := ssdtrain.OptimSweep(ssdtrain.RunConfig{
		Model:        model,
		MicroBatches: 2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ssdtrain.OptimSweepTable(sweep))
}
