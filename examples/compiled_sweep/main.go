// Example compiled_sweep demonstrates the compiled-plan API: compile a
// measurement once, bind a reusable Session to the plan, then execute a
// budget sweep and a bandwidth-share sweep against the shared arena,
// with adaptive steady-state detection cutting the per-point simulation
// cost. The session resets in place between points instead of
// rebuilding the simulated machine, and its results are byte-identical
// to one-shot runs — the equivalent calls (ssdtrain.Train /
// ssdtrain.TrainSweep) hit the same plan cache and pool sessions
// internally.
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"ssdtrain"
	"ssdtrain/internal/units"
)

func main() {
	model := ssdtrain.PaperConfig(ssdtrain.BERT, 8192, 4, 16)
	base := ssdtrain.RunConfig{
		Model:         model,
		Strategy:      ssdtrain.StrategySSDTrain,
		Steps:         12,
		AdaptiveSteps: true, // stop measuring once step time converges
	}

	start := time.Now()
	plan, err := ssdtrain.Compile(base)
	if err != nil {
		log.Fatal(err)
	}

	// One reusable arena for every point of the sweep: Execute resets it
	// in place (engine clock, weights, offload queues, cache pools)
	// instead of rebuilding runtime + graph + offload stack per point.
	sess, err := ssdtrain.NewSession(plan)
	if err != nil {
		log.Fatal(err)
	}

	// Reference run: let the Fig 3 planner pick the budget.
	ref, err := sess.Execute(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  planned budget %v  step %v  activation peak %v\n\n",
		model, ref.PlannedBudget, ref.StepTime(), ref.Measured.ActPeak)

	// Budget sweep: every point reuses the compiled graph, vectors and
	// the session's recycled arena.
	fmt.Println("offload budget sweep (fraction of planned):")
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		cfg := base
		cfg.Budget = units.Bytes(f * float64(ref.PlannedBudget))
		res, err := sess.Execute(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f%%  offloaded %8v  step %v  peak %v\n",
			f*100, res.Measured.IO.Offloaded, res.StepTime(), res.Measured.ActPeak)
	}

	// The recycled arena is an optimization, never a behavior change:
	// a single-use Execute of the same config must agree byte-for-byte.
	fresh, err := plan.Execute(base)
	if err != nil {
		log.Fatal(err)
	}
	again, err := sess.Execute(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession reuse byte-identical to fresh Execute: %v\n", reflect.DeepEqual(fresh, again))

	// Share sweep via the deduplicated batch API: 8 requested points,
	// 4 distinct — duplicates share one simulation.
	var cfgs []ssdtrain.RunConfig
	shares := []float64{0, 0.5, 0.25, 0.125}
	for i := 0; i < 8; i++ {
		cfg := base
		cfg.SSDBandwidthShare = shares[i%len(shares)]
		cfgs = append(cfgs, cfg)
	}
	results, err := ssdtrain.TrainSweep(0, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNVMe bandwidth-share sweep (fleet contention):")
	for i, s := range shares {
		fmt.Printf("  share %5.3f  budget %8v  step %v\n",
			orOne(s), results[i].PlannedBudget, results[i].StepTime())
	}

	// Wall-clock goes to stderr so stdout stays byte-reproducible.
	log.Printf("compiled sweep finished in %v", time.Since(start).Round(time.Millisecond))
}

func orOne(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}
