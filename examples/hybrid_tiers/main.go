// Tiered offload hierarchy: place activations across pinned host DRAM
// and the NVMe array at once (hybrid strategy), instead of choosing one
// target. This example sweeps the DRAM rung's capacity for a
// memory-constrained job whose array share is derated to a quarter (a
// busy fleet node): at zero capacity the hierarchy degenerates to the
// paper's ssd-only placement, at full working-set capacity to the
// cpu-offload strategy, and dram-first step time interpolates
// monotonically between them. It then shows the split placement's
// concurrency dividend: with prefetching overlapping both PCIe paths, a
// mid-capacity hybrid beats BOTH single-target endpoints.
package main

import (
	"fmt"
	"log"
	"time"

	"ssdtrain"
	"ssdtrain/internal/units"
)

func main() {
	model := ssdtrain.PaperConfig(ssdtrain.BERT, 4096, 3, 8)
	model.SeqLen = 512
	model.Vocab = 16384

	// Memory-constrained posture: pin the budget (offload everything) and
	// make every reload a synchronous demand load, so step time is a pure
	// function of where the bytes live.
	base := ssdtrain.RunConfig{
		Model:             model,
		Budget:            units.Bytes(1) << 62,
		NoForwarding:      true,
		PrefetchAhead:     -1,
		KeepLastModules:   -1,
		SSDBandwidthShare: 0.25,
	}

	fmt.Println("== dram-first: step time vs DRAM capacity (array at 1/4 share) ==")
	sweep, err := ssdtrain.DRAMSweep(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ssdtrain.DRAMSweepTable(sweep))
	fmt.Printf("endpoints: ssd-only %v → cpu-offload %v (working set %v)\n\n",
		sweep.SSDOnlyStep.Round(time.Millisecond),
		sweep.CPUStep.Round(time.Millisecond),
		sweep.PeakResident)

	fmt.Println("== overlapping both PCIe paths beats either target alone ==")
	overlapped := base
	overlapped.PrefetchAhead = 0 // default: prefetch everything
	both, err := ssdtrain.DRAMSweep(overlapped, []float64{0.75})
	if err != nil {
		log.Fatal(err)
	}
	mid := both.Rows[0]
	fmt.Printf("ssd-only   %v\n", both.SSDOnlyStep.Round(time.Millisecond))
	fmt.Printf("cpu-offload %v\n", both.CPUStep.Round(time.Millisecond))
	fmt.Printf("dram-first @ 75%% capacity: %v (dram %v + nvme %v in flight concurrently)\n\n",
		mid.StepTime.Round(time.Millisecond), mid.DRAMWritten, mid.NVMeWritten)

	fmt.Println("== split placement: route bytes by ratio across both paths ==")
	for _, ratio := range []float64{0.25, 0.5, 0.75} {
		res, err := ssdtrain.Train(ssdtrain.RunConfig{
			Model:        model,
			Strategy:     ssdtrain.StrategyHybridOffload,
			Placement:    ssdtrain.PlacementSplit,
			SplitRatio:   ratio,
			DRAMCapacity: units.Bytes(1) << 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		dram, nvme := res.Tiers[0], res.Tiers[1]
		fmt.Printf("ratio %.2f: step %v, dram %v, nvme %v\n",
			ratio, res.StepTime().Round(time.Microsecond), dram.Written, nvme.Written)
	}
}
