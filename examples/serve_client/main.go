// Command serve_client drives a running `cmd/serve` instance with the
// built-in load generator: a barrier-released wave of identical requests
// (provoking singleflight dedup), a mixed-palette load, and a small
// sweep, then prints the latency profile and the server's own dedup and
// cache counters. Exit status is non-zero if the server returned any 5xx
// or any pair of identical concurrent requests disagreed.
//
// Usage:
//
//	serve_client [-addr http://127.0.0.1:8080] [-n 200] [-c 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ssdtrain/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	n := flag.Int("n", 200, "total plan requests")
	c := flag.Int("c", 8, "client concurrency")
	flag.Parse()

	rep, err := serve.RunLoad(serve.LoadOptions{BaseURL: *addr, Requests: *n, Concurrency: *c})
	if err != nil {
		log.Fatalf("serve_client: %v", err)
	}
	fmt.Print(rep.String())
	if rep.Status5xx > 0 || rep.Server5xx > 0 || rep.Mismatches > 0 || rep.TransportErrors > 0 {
		log.Printf("serve_client: FAILED (5xx %d/%d, mismatches %d, transport errors %d)",
			rep.Status5xx, rep.Server5xx, rep.Mismatches, rep.TransportErrors)
		os.Exit(1)
	}
	if rep.SweepErrors > 0 {
		log.Printf("serve_client: warning: %d sweep points answered with inline errors (server saturated?)", rep.SweepErrors)
	}
	if rep.Coalesced == 0 {
		log.Printf("serve_client: warning: no singleflight dedup observed (server may have been warm)")
	}
}
