// Endurance planning (§II-C, §III-D): how long do SSDs last under
// activation offloading? This example first demonstrates, on the
// page-accurate FTL model, why the activation workload's large sequential
// writes with whole-file trims keep write amplification at ~1 while a
// random-overwrite workload (the JESD rating regime) drives it well
// above 1; then it projects deployment lifespans with the endurance
// model, sweeping drives-per-GPU.
package main

import (
	"fmt"
	"time"

	"ssdtrain/internal/ssd"
	"ssdtrain/internal/units"
)

func main() {
	fmt.Println("== write amplification: sequential+trim vs random overwrite ==")
	seq := wafOf(sequentialTrimWorkload)
	rnd := wafOf(randomOverwriteWorkload)
	fmt.Printf("sequential tensor writes + trims: WAF %.2f\n", seq)
	fmt.Printf("random 4-page overwrites:         WAF %.2f\n", rnd)
	fmt.Println("(the paper assumes 2.5 for the JESD rating workload and 1 for ours)")

	fmt.Println("\n== lifespan projection: BERT H12288 L3 B16 on the testbed ==")
	// Measured on the simulated testbed (Table III row 2): 9.5 GB
	// offloaded per 1.3 s step.
	perStep := units.Bytes(9.5e9)
	stepTime := 1300 * time.Millisecond
	for _, drives := range []int{1, 2, 4, 8} {
		m := ssd.DefaultEnduranceModel()
		m.DrivesPerGPU = drives
		years := m.LifespanYears(perStep, stepTime)
		fmt.Printf("%d× %s per GPU: budget %s host writes → %.1f years\n",
			drives, m.Spec.Name, m.LifetimeHostWrites(), years)
	}

	fmt.Println("\n== rating sensitivity ==")
	m := ssd.DefaultEnduranceModel()
	fmt.Printf("base (WAF 1, 1-day retention):  %.1f years\n", m.LifespanYears(perStep, stepTime))
	m.RetentionFactor = 1
	fmt.Printf("without retention relaxation:   %.2f years\n", m.LifespanYears(perStep, stepTime))
	m = ssd.DefaultEnduranceModel()
	m.WorkloadWAF = 2.5
	fmt.Printf("if the workload behaved like JESD (WAF 2.5): %.1f years\n", m.LifespanYears(perStep, stepTime))

	fmt.Println("\n== cost (§IV-D) ==")
	p58 := ssd.IntelP5800X16TB()
	s980 := ssd.Samsung980Pro1TB()
	fmt.Printf("%s: $%.0f, $%.2f per PBW\n", p58.Name, p58.PricePerUnit, p58.PricePerPBW())
	fmt.Printf("%s:   $%.0f, $%.2f per PBW\n", s980.Name, s980.PricePerUnit, s980.PricePerPBW())
	fmt.Printf("4× 980 PRO per $10k A100 = $%.0f of SSDs (the paper's $360 figure)\n",
		4*s980.PricePerUnit)
}

func wafOf(workload func(*ssd.FTL)) float64 {
	ftl, err := ssd.NewFTL(ssd.SmallTestGeometry())
	if err != nil {
		panic(err)
	}
	workload(ftl)
	return ftl.Stats().WAF
}

// sequentialTrimWorkload mimics the tensor cache: large sequential
// extents written, then trimmed wholesale once the step consumed them.
func sequentialTrimWorkload(f *ssd.FTL) {
	total := int64(f.LogicalPages())
	extent := total / 4
	for round := 0; round < 40; round++ {
		start := (int64(round) % 3) * extent
		f.Trim(start, extent)
		f.WriteRange(start, extent)
	}
}

// randomOverwriteWorkload mimics the JESD preconditioning regime: the
// drive is filled, then small random overwrites churn it.
func randomOverwriteWorkload(f *ssd.FTL) {
	total := int64(f.LogicalPages())
	f.WriteRange(0, total*9/10)
	x := uint64(42)
	for i := 0; i < int(total)*4; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		lpn := int64(x % uint64(total*9/10))
		f.WritePage(lpn)
	}
}
