// Quickstart: train a GPT shard on the simulated 2×A100 + NVMe testbed
// with and without SSDTrain, and show the paper's headline effect — the
// activation memory peak drops by tens of percent while the step time is
// unchanged, because every byte of I/O hides behind compute.
package main

import (
	"fmt"
	"log"
	"time"

	"ssdtrain"
)

func main() {
	// The paper's GPT evaluation point with hidden 12288, 3 layers,
	// micro-batch 16 (Fig 6, middle column).
	cfg := ssdtrain.PaperConfig(ssdtrain.GPT, 12288, 3, 16)

	baseline, err := ssdtrain.Train(ssdtrain.RunConfig{
		Model:    cfg,
		Strategy: ssdtrain.StrategyNoOffload,
	})
	if err != nil {
		log.Fatal(err)
	}

	offloaded, err := ssdtrain.Train(ssdtrain.RunConfig{
		Model:    cfg,
		Strategy: ssdtrain.StrategySSDTrain,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %s\n\n", cfg)
	fmt.Printf("%-22s %14s %14s\n", "", "no offloading", "SSDTrain")
	fmt.Printf("%-22s %14v %14v\n", "step time",
		baseline.StepTime().Round(time.Millisecond), offloaded.StepTime().Round(time.Millisecond))
	fmt.Printf("%-22s %14s %14s\n", "activation peak",
		baseline.Measured.ActPeak, offloaded.Measured.ActPeak)
	fmt.Printf("%-22s %14s %14s\n", "model throughput",
		baseline.Throughput(), offloaded.Throughput())

	red := 1 - float64(offloaded.Measured.ActPeak)/float64(baseline.Measured.ActPeak)
	over := float64(offloaded.StepTime())/float64(baseline.StepTime()) - 1
	fmt.Printf("\nactivation peak reduced %.0f%%, step-time overhead %.2f%%\n", red*100, over*100)
	fmt.Printf("offloaded %s, forwarded %s in-flight, reloaded %s, stall %v\n",
		offloaded.Measured.IO.Offloaded, offloaded.Measured.IO.Forwarded,
		offloaded.Measured.IO.Reloaded, offloaded.Measured.Stats.ComputeStall.Round(time.Microsecond))
}
