// Pipeline parallelism study (§IV-D): the paper argues SSDTrain's memory
// savings let PP systems raise their micro-batch size, amortizing the
// weight update without inflating pipeline bubbles. This example walks a
// BLOOM-like 12-stage pipeline: it prints the 1F1B schedule per stage,
// the bubble fraction as the micro-batch count changes, and the feasible
// micro-batch size under a fixed activation budget with and without
// offloading.
package main

import (
	"fmt"
	"time"

	"ssdtrain/internal/sched"
	"ssdtrain/internal/units"
)

func main() {
	// A BLOOM-style data-parallel rank: 32 sequences per rank per step.
	const rankBatch = 32
	const stages = 12

	fmt.Println("== 1F1B schedule (4 stages, 6 micro-batches) ==")
	for s := 0; s < 4; s++ {
		fmt.Printf("stage %d: %s\n", s, sched.OrderString(sched.StageOrder(sched.OneFOneB, s, 4, 6)))
	}

	fmt.Println("\n== bubble fraction vs micro-batch size (12 stages, 32-sequence rank batch) ==")
	fmt.Printf("%10s %12s %15s %15s\n", "micro-bsz", "micro-cnt", "bubble (1F1B)", "step time")
	costs := sched.Costs{FwdPerMB: 40 * time.Millisecond, BwdPerMB: 80 * time.Millisecond,
		Comm: 2 * time.Millisecond, Update: 30 * time.Millisecond}
	for _, mbsz := range []int{1, 2, 4, 8} {
		m := rankBatch / mbsz
		c := costs
		// Compute time scales with the micro-batch size.
		c.FwdPerMB *= time.Duration(mbsz)
		c.BwdPerMB *= time.Duration(mbsz)
		res := sched.Run(sched.OneFOneB, stages, m, c)
		fmt.Printf("%10d %12d %14.1f%% %15v\n", mbsz, m, res.BubbleFraction*100, res.StepTime.Round(time.Millisecond))
	}

	fmt.Println("\nLarger micro-batches shrink the per-step count m, growing the ideal")
	fmt.Println("bubble (p-1)/(m+p-1) — but they amortize the weight update and run")
	fmt.Println("more efficient kernels (Fig 8a). The binding constraint is memory:")

	// Stage-0 of a 1F1B pipeline holds up to p micro-batches of
	// activations at once. Assume 0.9 GB of activations per sequence per
	// stage (3 layers of a hidden-12288 model) and a 25 GB budget.
	perSeq := units.Bytes(0.9 * 1e9)
	budget := units.Bytes(25 * 1e9)
	fmt.Printf("\n%10s %22s %22s\n", "micro-bsz", "stage-0 resident (keep)", "resident (SSDTrain)")
	for _, mbsz := range []int{1, 2, 4, 8} {
		m := rankBatch / mbsz
		res := sched.Run(sched.OneFOneB, stages, m, costs)
		inflight := res.PeakInFlight[0]
		keep := units.Bytes(int64(inflight)*int64(mbsz)) * perSeq
		// SSDTrain keeps roughly the last module per in-flight micro-batch
		// (measured ~40% of the keep footprint in Fig 6).
		off := units.Bytes(float64(keep) * 0.6)
		mark := func(n units.Bytes) string {
			if n <= budget {
				return fmt.Sprintf("%8.1f GB  fits", n.GBf())
			}
			return fmt.Sprintf("%8.1f GB  OOM", n.GBf())
		}
		fmt.Printf("%10d %22s %22s\n", mbsz, mark(keep), mark(off))
	}
	fmt.Println("\nWith offloading, micro-batch sizes that OOM under keep-in-memory fit")
	fmt.Println("the budget — the §IV-D path from memory savings to throughput.")
}
