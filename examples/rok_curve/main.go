// ROK curve study (Fig 7): where do keep, recompute and SSD-offload sit
// in the (activation peak, throughput) plane, and what batch size does a
// fixed memory budget buy under each strategy?
package main

import (
	"fmt"
	"log"

	"ssdtrain"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/units"
)

func main() {
	for _, hidden := range []int{12288, 14336} {
		pts, err := ssdtrain.Fig7(hidden, []int{4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== 3-layer BERT, hidden %d ==\n", hidden)
		fmt.Printf("%-12s %6s %16s %22s\n", "strategy", "batch", "act peak (GB)", "throughput (TFLOP/s)")
		for _, p := range pts {
			fmt.Printf("%-12s %6d %16.2f %22.1f\n",
				p.Strategy, p.Batch, p.Peak.GBf(), float64(p.Throughput)/1e12)
		}

		// The §IV-C observation: under the same activation budget, the
		// offload point fits twice the batch of the keep point.
		budget := peakOf(pts, ssdtrain.StrategyNoOffload, 8)
		fmt.Printf("\nwith a %.1f GB budget (keep@B8):\n", budget.GBf())
		for _, strat := range []ssdtrain.Strategy{ssdtrain.StrategyNoOffload, ssdtrain.StrategySSDTrain} {
			best := 0
			for _, p := range pts {
				if p.Strategy == strat && p.Peak <= budget && p.Batch > best {
					best = p.Batch
				}
			}
			fmt.Printf("  %-12s largest feasible batch: %d\n", strat, best)
		}
		fmt.Println()
	}
}

func peakOf(pts []exp.ROKPoint, s ssdtrain.Strategy, b int) units.Bytes {
	for _, p := range pts {
		if p.Strategy == s && p.Batch == b {
			return p.Peak
		}
	}
	return 0
}
