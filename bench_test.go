// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design decisions DESIGN.md calls out.
// Each benchmark reports the figure's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` prints the reproduction next
// to the timing. EXPERIMENTS.md records the paper-vs-measured comparison.
package ssdtrain

import (
	"fmt"
	"testing"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// BenchmarkFig1ScalingTrends fits the Fig 1 growth series.
func BenchmarkFig1ScalingTrends(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := Fig1()
		ratio = f.MemoryVsThroughput
	}
	b.ReportMetric(ratio, "memVsCompute")
}

// BenchmarkFig5Lifespan projects SSD lifespan/bandwidth at scale.
func BenchmarkFig5Lifespan(b *testing.B) {
	var minLife, maxBW float64
	for i := 0; i < b.N; i++ {
		rows := Fig5()
		minLife, maxBW = 1e9, 0
		for _, r := range rows {
			if r.Proj.LifespanYears < minLife {
				minLife = r.Proj.LifespanYears
			}
			if bw := r.Proj.WriteBandwidth.GBpsF(); bw > maxBW {
				maxBW = bw
			}
		}
	}
	b.ReportMetric(minLife, "minLifespanYears")
	b.ReportMetric(maxBW, "maxWriteGB/s")
}

// BenchmarkFig6StepTime measures the step-time overhead of SSDTrain
// across the nine evaluation points (paper: negligible).
func BenchmarkFig6StepTime(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig6(16)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Overhead > worst {
				worst = r.Overhead
			}
		}
	}
	b.ReportMetric(worst*100, "worstOverhead%")
}

// BenchmarkFig6MemoryPeak measures the activation-peak reduction (paper:
// 28–47% over the nine points).
func BenchmarkFig6MemoryPeak(b *testing.B) {
	var best, worst float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig6(16)
		if err != nil {
			b.Fatal(err)
		}
		best, worst = 0, 1
		for _, r := range rows {
			if r.PeakReduction > best {
				best = r.PeakReduction
			}
			if r.PeakReduction < worst {
				worst = r.PeakReduction
			}
		}
	}
	b.ReportMetric(best*100, "bestReduction%")
	b.ReportMetric(worst*100, "worstReduction%")
}

// BenchmarkFig7ROK sweeps the recompute-offload-keep space for both
// hidden sizes of Fig 7.
func BenchmarkFig7ROK(b *testing.B) {
	for _, hidden := range []int{12288, 14336} {
		b.Run(fmt.Sprintf("H%d", hidden), func(b *testing.B) {
			var offThr, keepThr float64
			var offPeak, keepPeak units.Bytes
			for i := 0; i < b.N; i++ {
				pts, err := Fig7(hidden, []int{4, 8, 16})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					if p.Batch != 16 {
						continue
					}
					switch p.Strategy {
					case StrategySSDTrain:
						offThr, offPeak = float64(p.Throughput), p.Peak
					case StrategyNoOffload:
						keepThr, keepPeak = float64(p.Throughput), p.Peak
					}
				}
			}
			b.ReportMetric(offThr/keepThr, "thrVsKeep")
			b.ReportMetric(float64(offPeak)/float64(keepPeak), "peakVsKeep")
		})
	}
}

// BenchmarkFig8aMicroBatchBoost decomposes the large-micro-batch
// throughput gain (paper: dominated by weight-update savings).
func BenchmarkFig8aMicroBatchBoost(b *testing.B) {
	var imp16, upd16 float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig8a([]int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		imp16, upd16 = last.Improvement, last.UpdateSaving
	}
	b.ReportMetric(imp16*100, "B16improvement%")
	b.ReportMetric(upd16*100, "B16updateShare%")
}

// BenchmarkFig8bUpscaling projects per-GPU write bandwidth when the
// workload scales out (paper: at or below the 2-GPU reference).
func BenchmarkFig8bUpscaling(b *testing.B) {
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		ref := Fig8bReference().WriteBandwidth
		worstRatio = 0
		for _, r := range Fig8b() {
			ratio := float64(r.Proj.WriteBandwidth) / float64(ref)
			if ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "worstVsRef")
}

// BenchmarkTable3OffloadAmount compares measured offload volume against
// the analytic estimate (paper: within a few percent).
func BenchmarkTable3OffloadAmount(b *testing.B) {
	var worstErr float64
	for i := 0; i < b.N; i++ {
		rows, err := Table3()
		if err != nil {
			b.Fatal(err)
		}
		worstErr = 0
		for _, r := range rows {
			e := float64(r.Offloaded)/float64(r.Estimate) - 1
			if e < 0 {
				e = -e
			}
			if e > worstErr {
				worstErr = e
			}
		}
	}
	b.ReportMetric(worstErr*100, "worstEstErr%")
}

// --- Ablation benches: the design decisions of DESIGN.md §4 ---

// ablationConfig is the mid-sized geometry used by the ablations.
func ablationConfig() models.Config {
	return models.PaperConfig(models.BERT, 12288, 3, 16)
}

// fullOffload disables the Fig 3 planner so the ablated mechanism is the
// only thing standing between the run and a stall.
const fullOffload = units.Bytes(1) << 62

func runAblation(b *testing.B, cfg exp.RunConfig) (stall, step, peakGB float64) {
	b.Helper()
	var res *exp.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res.Measured.Stats.ComputeStall.Seconds() * 1e3,
		res.StepTime().Seconds() * 1e3,
		res.Measured.ActPeak.GBf()
}

// BenchmarkAblationForwarding disables data forwarding: unpacks of
// in-flight stores serialize behind the store and reload from the SSD.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, off := range []bool{false, true} {
		b.Run(fmt.Sprintf("noForwarding=%v", off), func(b *testing.B) {
			stall, step, _ := runAblation(b, exp.RunConfig{
				Model: ablationConfig(), Strategy: exp.SSDTrain, NoForwarding: off,
				Budget: fullOffload, KeepLastModules: -1,
			})
			b.ReportMetric(stall, "stall_ms")
			b.ReportMetric(step, "step_ms")
		})
	}
}

// BenchmarkAblationDedup disables storage-stamp deduplication: repeated
// registrations of the same tensor trigger redundant I/O (most visible on
// T5, whose decoder layers all save the encoder output).
func BenchmarkAblationDedup(b *testing.B) {
	for _, off := range []bool{false, true} {
		b.Run(fmt.Sprintf("noDedup=%v", off), func(b *testing.B) {
			var written float64
			var res *exp.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(exp.RunConfig{
					Model:    models.PaperConfig(models.T5, 8192, 4, 16),
					Strategy: exp.SSDTrain, NoDedup: off, Budget: fullOffload,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			written = res.Measured.IO.Offloaded.GBf()
			b.ReportMetric(written, "offloadedGB")
			b.ReportMetric(res.StepTime().Seconds()*1e3, "step_ms")
		})
	}
}

// BenchmarkAblationKeepLast removes the keep-last-module rule (Fig 2 ④).
// Data forwarding rescues the timing (the in-flight copies serve backward
// from memory), so the cost of dropping the rule shows up as wasted store
// I/O: bytes written to the SSD that are never read back — pure endurance
// and bandwidth waste.
func BenchmarkAblationKeepLast(b *testing.B) {
	for _, keep := range []int{1, -1} {
		b.Run(fmt.Sprintf("keepLast=%d", keep), func(b *testing.B) {
			var res *exp.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(exp.RunConfig{
					Model: models.PaperConfig(models.BERT, 12288, 3, 8), Strategy: exp.SSDTrain,
					KeepLastModules: keep, Budget: fullOffload,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			io := res.Measured.IO
			b.ReportMetric(io.Offloaded.GBf(), "storedGB")
			b.ReportMetric(io.Forwarded.GBf(), "wastedStoreGB")
			b.ReportMetric(res.Measured.Stats.ComputeStall.Seconds()*1e3, "stall_ms")
		})
	}
}

// BenchmarkAblationPrefetch compares prefetch-everything (default),
// one-module lookahead, and no prefetching (demand loads only). In this
// simulator demand loads still hide behind the GPU's kernel backlog —
// exactly the paper's §III-C2 argument that "prefetching schemes are
// equivalent as long as there are always I/O tasks in the GPU job queue"
// — so the metric of interest is how many loads became blocking demand
// loads on the host.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, ahead := range []int{0, 1, -1} {
		b.Run(fmt.Sprintf("ahead=%d", ahead), func(b *testing.B) {
			var res *exp.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(exp.RunConfig{
					Model: ablationConfig(), Strategy: exp.SSDTrain, PrefetchAhead: ahead,
					Budget: fullOffload,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Counters.Get("cache.demand_loads")), "demandLoads")
			b.ReportMetric(res.Measured.Stats.ComputeStall.Seconds()*1e3, "stall_ms")
			b.ReportMetric(res.StepTime().Seconds()*1e3, "step_ms")
		})
	}
}

// BenchmarkAblationGDS compares the direct GPU–SSD path against the
// CPU bounce-buffer compatibility path (§II-D).
func BenchmarkAblationGDS(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		b.Run(fmt.Sprintf("bounce=%v", disabled), func(b *testing.B) {
			stall, step, peak := runAblation(b, exp.RunConfig{
				Model: ablationConfig(), Strategy: exp.SSDTrain, DisableGDS: disabled,
			})
			b.ReportMetric(stall, "stall_ms")
			b.ReportMetric(step, "step_ms")
			b.ReportMetric(peak, "actPeakGB")
		})
	}
}

// BenchmarkAblationOffloadFraction sweeps the offload budget from 20% to
// 100% of the eligible activations, exposing the knee where I/O stops
// hiding behind compute (the Fig 3 planner's operating point).
func BenchmarkAblationOffloadFraction(b *testing.B) {
	cfg := ablationConfig()
	base, err := exp.Run(exp.RunConfig{Model: cfg, Strategy: exp.SSDTrain})
	if err != nil {
		b.Fatal(err)
	}
	eligible := base.EligibleBytes
	for _, f := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		b.Run(fmt.Sprintf("frac=%.1f", f), func(b *testing.B) {
			stall, step, peak := runAblation(b, exp.RunConfig{
				Model: cfg, Strategy: exp.SSDTrain,
				Budget: units.Bytes(f * float64(eligible)),
			})
			b.ReportMetric(stall, "stall_ms")
			b.ReportMetric(step, "step_ms")
			b.ReportMetric(peak, "actPeakGB")
		})
	}
}

// BenchmarkAblationHostCost sweeps the cache's per-hook CPU cost to test
// the paper's claim that the extra host logic stays off the critical path
// (§IV-B) — until it is made absurdly large.
func BenchmarkAblationHostCost(b *testing.B) {
	for _, us := range []int{0, 15, 100, 1000} {
		b.Run(fmt.Sprintf("hostCost=%dus", us), func(b *testing.B) {
			_, step, _ := runAblation(b, exp.RunConfig{
				Model: ablationConfig(), Strategy: exp.SSDTrain,
				HostCost: time.Duration(us) * time.Microsecond,
			})
			b.ReportMetric(step, "step_ms")
		})
	}
}

// --- Fleet benches: the cluster simulation subsystem ---

// BenchmarkFleetScheduler measures the cluster event loop under each
// scheduling policy with a warm profile cache, so the timing isolates
// scheduling + fluid replay from the (memoized) measurement runs.
func BenchmarkFleetScheduler(b *testing.B) {
	mix := FleetJobMix(FleetMixConfig{Jobs: 32, Seed: 1, MinSteps: 20, MaxSteps: 120})
	cluster := FleetClusterSpec{Nodes: 8, Node: DefaultFleetNode()}
	prof := NewFleetProfiler(0)
	// Warm the cache outside the timed region.
	if _, err := FleetSimulate(FleetConfig{Cluster: cluster, Jobs: mix, Policy: FleetFIFO, Profiler: prof}); err != nil {
		b.Fatal(err)
	}
	for _, p := range []FleetPolicy{FleetFIFO, FleetSJF, FleetBackfill} {
		b.Run(string(p), func(b *testing.B) {
			var r *FleetReport
			var err error
			for i := 0; i < b.N; i++ {
				r, err = FleetSimulate(FleetConfig{Cluster: cluster, Jobs: mix, Policy: p, Profiler: prof})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(r.MeanWait.Seconds(), "meanWait_s")
			b.ReportMetric(r.MinLifespanYears, "minLifespanY")
		})
	}
}

// BenchmarkFleetResultCache measures the memoized profile path: a hit
// must be orders of magnitude cheaper than the measurement run it
// replaces (reported as missRun_ms for comparison).
func BenchmarkFleetResultCache(b *testing.B) {
	node := DefaultFleetNode()
	run := RunConfig{Model: PaperConfig(BERT, 8192, 4, 8), Strategy: StrategySSDTrain}
	cold := NewFleetProfiler(0)
	start := time.Now()
	if _, err := cold.Measure(run, node, 0.5, 0); err != nil {
		b.Fatal(err)
	}
	missCost := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cold.Measure(run, node, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missCost.Milliseconds()), "missRun_ms")
	if runs := cold.Runs(); runs != 1 {
		b.Fatalf("cache leak: %d measurement runs, want 1", runs)
	}
}

// BenchmarkCPUOffloader compares the SSD and host-memory offload targets.
func BenchmarkCPUOffloader(b *testing.B) {
	for _, strat := range []exp.Strategy{exp.SSDTrain, exp.CPUOffload} {
		b.Run(string(strat), func(b *testing.B) {
			stall, step, peak := runAblation(b, exp.RunConfig{Model: ablationConfig(), Strategy: strat})
			b.ReportMetric(stall, "stall_ms")
			b.ReportMetric(step, "step_ms")
			b.ReportMetric(peak, "actPeakGB")
		})
	}
}
